// Tests for the numerics guardrails + recovery ladder: CRC32, the
// deterministic fault-point registry, config/job-spec input hardening,
// checkpoint CRC + .prev rotation, trajectory frame CRC, and every rung of
// the OrderNCalculator recovery ladder under injected faults.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/calculator_spec.hpp"
#include "src/core/health_spec.hpp"
#include "src/io/binary_trajectory.hpp"
#include "src/io/config.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/structures/builders.hpp"
#include "src/svc/checkpoint.hpp"
#include "src/svc/job_spec.hpp"
#include "src/tb/tb_model.hpp"
#include "src/util/crc32.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_point.hpp"

namespace tbmd {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the system temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("tbmd_rob_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

/// The fault registry is process-global: every test that arms it must
/// disarm on exit, pass or fail.
struct FaultGuard {
  FaultGuard() { fault::disarm_all(); }
  ~FaultGuard() { fault::disarm_all(); }
};

// --- CRC32 ------------------------------------------------------------------

TEST(Crc32, KnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, UpdateChainsAcrossBuffers) {
  const std::uint32_t whole = crc32("123456789", 9);
  std::uint32_t chained = crc32_update(0, "1234", 4);
  chained = crc32_update(chained, "56789", 5);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> buf(257);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 31u);
  }
  const std::uint32_t clean = crc32(buf.data(), buf.size());
  buf[100] ^= 0x08;
  EXPECT_NE(crc32(buf.data(), buf.size()), clean);
}

// --- fault-point registry ---------------------------------------------------

TEST(FaultPoint, DisarmedFireIsInertAndCountsNothing) {
  const FaultGuard guard;
  EXPECT_FALSE(fault::any_armed());
  EXPECT_FALSE(fault::fire(fault::kOnxNanTile));
  EXPECT_FALSE(fault::fire(fault::kOnxNanTile));
  // Disarmed hits are deliberately not counted (the fast path is one
  // relaxed load, no registry access).
  EXPECT_EQ(fault::hits(fault::kOnxNanTile), 0);
}

TEST(FaultPoint, FiresOnExactHitWindow) {
  const FaultGuard guard;
  fault::arm(fault::kOnxNanTile, 2, 2);  // fire on hits 2 and 3
  EXPECT_TRUE(fault::any_armed());
  EXPECT_FALSE(fault::fire(fault::kOnxNanTile));  // hit 1
  EXPECT_TRUE(fault::fire(fault::kOnxNanTile));   // hit 2
  EXPECT_TRUE(fault::fire(fault::kOnxNanTile));   // hit 3
  EXPECT_FALSE(fault::fire(fault::kOnxNanTile));  // hit 4
  EXPECT_EQ(fault::hits(fault::kOnxNanTile), 4);
  EXPECT_EQ(fault::fired(fault::kOnxNanTile), 2);
  // An armed site never perturbs other sites.
  EXPECT_FALSE(fault::fire(fault::kSvcStall));
  fault::disarm_all();
  EXPECT_FALSE(fault::any_armed());
  EXPECT_FALSE(fault::fire(fault::kOnxNanTile));
}

TEST(FaultPoint, AtHitZeroFiresEveryTime) {
  const FaultGuard guard;
  fault::arm(fault::kSvcStall, 0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fault::fire(fault::kSvcStall));
  EXPECT_EQ(fault::fired(fault::kSvcStall), 5);
}

TEST(FaultPoint, SpecGrammar) {
  const FaultGuard guard;
  fault::arm_from_spec("onx.nan_tile@2:3, svc.stall ckpt.torn_write@0");
  EXPECT_FALSE(fault::fire(fault::kOnxNanTile));  // hit 1
  EXPECT_TRUE(fault::fire(fault::kOnxNanTile));   // hit 2
  EXPECT_TRUE(fault::fire(fault::kSvcStall));     // bare name = first hit
  EXPECT_FALSE(fault::fire(fault::kSvcStall));
  EXPECT_TRUE(fault::fire(fault::kCkptTornWrite));
  EXPECT_TRUE(fault::fire(fault::kCkptTornWrite));
  // Empty spec is a no-op, malformed or unknown entries throw.
  fault::disarm_all();
  fault::arm_from_spec("");
  EXPECT_FALSE(fault::any_armed());
  EXPECT_THROW(fault::arm_from_spec("no.such.site"), Error);
  EXPECT_THROW(fault::arm_from_spec("svc.stall@bogus"), Error);
}

// --- config hardening -------------------------------------------------------

TEST(ConfigHardening, RejectsNonFiniteDoubles) {
  const io::Config cfg = io::Config::parse_string(
      "a = nan\nb = inf\nc = -inf\nd = 1.5\nlist = 1.0 nan\n", "h.cfg");
  EXPECT_THROW((void)cfg.get_double("a", 0.0), Error);
  EXPECT_THROW((void)cfg.require_double("b"), Error);
  EXPECT_THROW((void)cfg.get_double("c", 0.0), Error);
  EXPECT_DOUBLE_EQ(cfg.get_double("d", 0.0), 1.5);
  EXPECT_THROW((void)cfg.get_doubles("list", {}), Error);
  // The error carries source:line so a sweep author can find the key.
  try {
    (void)cfg.get_double("a", 0.0);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("h.cfg:1"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos);
  }
}

using svc::JobSpec;

JobSpec spec_from(const std::string& text) {
  return svc::JobSpec::from_config(io::Config::parse_string(text, "job.cfg"));
}

TEST(JobSpecHardening, RejectsOutOfRangeValues) {
  EXPECT_NO_THROW(spec_from("steps = 5\n"));
  EXPECT_THROW(spec_from("steps = 5\ndt = 0\n"), Error);
  EXPECT_THROW(spec_from("steps = 5\ndt = -1\n"), Error);
  EXPECT_THROW(spec_from("steps = 0\n"), Error);
  EXPECT_THROW(spec_from("steps = 5\ntemperature = -10\n"), Error);
  EXPECT_THROW(spec_from("steps = 5\nlattice = -1\n"), Error);
  EXPECT_THROW(spec_from("steps = 5\ncells = 2 0 2\n"), Error);
  EXPECT_THROW(spec_from("steps = 5\nseed = -3\n"), Error);
  EXPECT_THROW(spec_from("steps = 5\nskin = -0.1\n"), Error);
  EXPECT_THROW(spec_from("steps = 5\nsample_every = -1\n"), Error);
  EXPECT_THROW(spec_from("steps = 5\ncheckpoint_every = -1\n"), Error);
  EXPECT_THROW(spec_from("steps = 5\nmode = on\ndrop_tolerance = -1e-7\n"),
               Error);
  EXPECT_THROW(spec_from("steps = 5\nmode = on\nschedule_decay = 1.5\n"),
               Error);
  EXPECT_THROW(spec_from("steps = 5\nmode = on\nschedule_loosening = 0\n"),
               Error);
  EXPECT_THROW(
      spec_from("steps = 5\nthermostat = berendsen\nthermostat_tau = 0\n"),
      Error);
  EXPECT_THROW(spec_from("steps = 5\ndt = nan\n"), Error);
}

TEST(JobSpecHardening, HealthAndFaultKeys) {
  const JobSpec s = spec_from(
      "steps = 5\nmode = on\nhealth = true\nmax_force = 50\n"
      "max_energy_per_atom = 100\nhealth_fp64_retry = false\n"
      "health_tighten_factor = 0.25\nfaults = svc.stall@3\n");
  EXPECT_TRUE(s.calc.health.enabled);
  EXPECT_DOUBLE_EQ(s.calc.health.max_force, 50.0);
  EXPECT_DOUBLE_EQ(s.calc.health.max_energy_per_atom, 100.0);
  EXPECT_FALSE(s.calc.health.fp64_retry);
  EXPECT_DOUBLE_EQ(s.calc.health.tighten_factor, 0.25);
  EXPECT_EQ(s.faults, "svc.stall@3");

  EXPECT_THROW(spec_from("steps = 5\nmode = on\nmax_force = -1\n"), Error);
  EXPECT_THROW(
      spec_from("steps = 5\nmode = on\nhealth_tighten_factor = 1.5\n"), Error);
}

TEST(CalculatorSpecFingerprint, HealthRelevantOnlyWhenEnabled) {
  CalculatorSpec base = CalculatorSpec::order_n();
  CalculatorSpec tweaked = base;
  tweaked.health.max_force = 123.0;  // disabled spec: not identity-relevant
  EXPECT_EQ(base.fingerprint(), tweaked.fingerprint());
  tweaked.health.enabled = true;
  EXPECT_NE(base.fingerprint(), tweaked.fingerprint());
  CalculatorSpec other = tweaked;
  other.health.max_force = 456.0;
  EXPECT_NE(tweaked.fingerprint(), other.fingerprint());
}

// --- checkpoint CRC + rotation ----------------------------------------------

svc::Checkpoint small_checkpoint(long step) {
  svc::Checkpoint ck;
  ck.step = step;
  ck.total_steps = 10;
  System sys;
  sys.add_atom(Element::Si, {0.1, 0.2, 0.3}, {1.0, -2.0, 3.0});
  sys.add_atom(Element::C, {1.5, 0.0, static_cast<double>(step)},
               {0.0, 0.5, 0.0});
  ck.system = std::move(sys);
  ck.thermostat_target = 300.0;
  ck.thermostat_state = {0.25, -0.125};
  Rng rng(static_cast<std::uint64_t>(77 + step));
  ck.rng = rng.state();
  return ck;
}

void expect_same_checkpoint(const svc::Checkpoint& a,
                            const svc::Checkpoint& b) {
  EXPECT_EQ(a.step, b.step);
  ASSERT_EQ(a.system.size(), b.system.size());
  for (std::size_t i = 0; i < a.system.size(); ++i) {
    EXPECT_EQ(a.system.positions()[i], b.system.positions()[i]);
    EXPECT_EQ(a.system.velocities()[i], b.system.velocities()[i]);
  }
  EXPECT_EQ(a.thermostat_state, b.thermostat_state);
  for (int k = 0; k < 4; ++k) EXPECT_EQ(a.rng.s[k], b.rng.s[k]);
}

TEST(CheckpointCrc, RoundTrips) {
  ScratchDir dir("ck_round");
  const std::string path = dir.file("a.ckpt");
  const svc::Checkpoint ck = small_checkpoint(3);
  svc::write_checkpoint(path, ck);
  EXPECT_TRUE(svc::is_checkpoint_file(path));
  expect_same_checkpoint(svc::read_checkpoint(path), ck);
}

TEST(CheckpointCrc, DetectsCorruptionAndFallsBackToPrev) {
  ScratchDir dir("ck_corrupt");
  const std::string path = dir.file("a.ckpt");
  svc::write_checkpoint(path, small_checkpoint(2));
  svc::write_checkpoint(path, small_checkpoint(4));  // rotates step 2 -> .prev
  ASSERT_TRUE(fs::exists(path + ".prev"));

  // Flip one payload byte of the primary: read must reject it, fallback
  // must recover the rotated step-2 state.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char b;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(40);
    f.write(&b, 1);
  }
  EXPECT_THROW(svc::read_checkpoint(path), Error);
  bool used_prev = false;
  const svc::Checkpoint ck =
      svc::read_checkpoint_with_fallback(path, &used_prev);
  EXPECT_TRUE(used_prev);
  expect_same_checkpoint(ck, small_checkpoint(2));
}

TEST(CheckpointCrc, FallbackThrowsWhenBothCorrupt) {
  ScratchDir dir("ck_both");
  const std::string path = dir.file("a.ckpt");
  std::ofstream(path) << "garbage";
  std::ofstream(path + ".prev") << "also garbage";
  EXPECT_THROW(svc::read_checkpoint_with_fallback(path), Error);
}

TEST(CheckpointCrc, InjectedTornWriteLeavesRecoverablePrev) {
  const FaultGuard guard;
  ScratchDir dir("ck_torn");
  const std::string path = dir.file("a.ckpt");
  svc::write_checkpoint(path, small_checkpoint(2));
  fault::arm(fault::kCkptTornWrite, 1);
  // The torn write simulates a kill after a partial payload hit the disk:
  // it throws, the final file fails its CRC, and .prev holds step 2.
  EXPECT_THROW(svc::write_checkpoint(path, small_checkpoint(4)), Error);
  EXPECT_THROW(svc::read_checkpoint(path), Error);
  bool used_prev = false;
  expect_same_checkpoint(svc::read_checkpoint_with_fallback(path, &used_prev),
                         small_checkpoint(2));
  EXPECT_TRUE(used_prev);
}

TEST(CheckpointCrc, InjectedCrashBeforeRenameKeepsPrimary) {
  const FaultGuard guard;
  ScratchDir dir("ck_crash");
  const std::string path = dir.file("a.ckpt");
  svc::write_checkpoint(path, small_checkpoint(2));
  fault::arm(fault::kCkptCrashBeforeRename, 1);
  EXPECT_THROW(svc::write_checkpoint(path, small_checkpoint(4)), Error);
  // The crash happened before the rename: the primary still holds step 2
  // and passes its CRC -- no fallback needed.
  bool used_prev = true;
  expect_same_checkpoint(svc::read_checkpoint_with_fallback(path, &used_prev),
                         small_checkpoint(2));
  EXPECT_FALSE(used_prev);
}

// --- trajectory frame CRC ---------------------------------------------------

System two_atom_system() {
  System sys;
  sys.add_atom(Element::C, {0.0, 0.0, 0.0}, {0.01, 0.0, 0.0});
  sys.add_atom(Element::C, {1.4, 0.0, 0.0}, {0.0, -0.01, 0.0});
  return sys;
}

TEST(TrajectoryCrc, StrictReaderRejectsBitFlip) {
  ScratchDir dir("tbt_flip");
  const std::string path = dir.file("t.tbt");
  System sys = two_atom_system();
  {
    io::BinaryTrajectoryWriter w(path, sys);
    for (long s = 0; s <= 3; ++s) {
      sys.positions()[0].x += 0.01;
      w.add_frame(sys, s);
    }
  }
  // Clean file reads all four frames.
  {
    io::BinaryTrajectoryReader r(path);
    io::TrajectoryFrame f;
    int frames = 0;
    while (r.next(f)) ++frames;
    EXPECT_EQ(frames, 4);
  }
  // Flip one byte near the end (inside the last frame).
  const auto size = fs::file_size(path);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size) - 7);
    char b;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x10);
    f.seekp(static_cast<std::streamoff>(size) - 7);
    f.write(&b, 1);
  }
  io::BinaryTrajectoryReader r(path);
  io::TrajectoryFrame f;
  EXPECT_TRUE(r.next(f));
  EXPECT_TRUE(r.next(f));
  EXPECT_TRUE(r.next(f));
  EXPECT_THROW(r.next(f), Error);
}

TEST(TrajectoryCrc, ResumeDropsTornTail) {
  ScratchDir dir("tbt_torn");
  const std::string path = dir.file("t.tbt");
  System sys = two_atom_system();
  {
    io::BinaryTrajectoryWriter w(path, sys);
    for (long s = 0; s <= 3; ++s) {
      sys.positions()[0].x += 0.01;
      w.add_frame(sys, s);
    }
  }
  // Tear the file mid-way through the last frame (as a kill mid-write
  // would): the tolerant resume scan must keep the intact frames and
  // truncate the debris, then append cleanly.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);
  System resume_sys = two_atom_system();
  resume_sys.positions()[0].x += 4 * 0.01;
  {
    io::BinaryTrajectoryWriter w =
        io::BinaryTrajectoryWriter::resume(path, resume_sys, 10);
    EXPECT_EQ(w.frames_written(), 3u);
    w.add_frame(resume_sys, 4);
  }
  io::BinaryTrajectoryReader r(path);
  io::TrajectoryFrame f;
  std::vector<long> steps;
  while (r.next(f)) steps.push_back(f.step);
  EXPECT_EQ(steps, (std::vector<long>{0, 1, 2, 4}));
}

// --- recovery ladder --------------------------------------------------------

onx::OrderNOptions guarded_options() {
  onx::OrderNOptions opt;
  opt.health.enabled = true;
  return opt;
}

System diamond64() { return structures::diamond(Element::C, 3.567, 2, 2, 2); }

TEST(RecoveryLadder, Fp64RetryRecoversMixedRun) {
  const FaultGuard guard;
  onx::OrderNOptions opt = guarded_options();
  opt.purification.precision = PrecisionMode::kMixed;
  onx::OrderNCalculator calc(tb::xwch_carbon(), opt);
  const System sys = diamond64();
  fault::arm(fault::kOnxNoConverge, 1);  // stall only the first run
  const ForceResult res = calc.compute(sys);
  EXPECT_TRUE(std::isfinite(res.energy));
  EXPECT_TRUE(calc.last_purification().converged);
  EXPECT_EQ(calc.recovery_stats().fp64_retries, 1u);
  EXPECT_EQ(calc.recovery_stats().tighten_retries, 0u);
  EXPECT_EQ(calc.recovery_stats().exact_fallbacks, 0u);
  EXPECT_EQ(calc.recovery_stats().last_failure,
            FailureClass::kNonConvergence);
}

TEST(RecoveryLadder, TightenRetryRecoversFp64Run) {
  const FaultGuard guard;
  onx::OrderNCalculator calc(tb::xwch_carbon(), guarded_options());
  const System sys = diamond64();
  fault::arm(fault::kOnxNoConverge, 1);
  const ForceResult res = calc.compute(sys);
  EXPECT_TRUE(std::isfinite(res.energy));
  // Rung (a) is inapplicable to an fp64 run, so the ladder lands on (b).
  EXPECT_EQ(calc.recovery_stats().fp64_retries, 0u);
  EXPECT_EQ(calc.recovery_stats().tighten_retries, 1u);
  EXPECT_EQ(calc.recovery_stats().exact_fallbacks, 0u);
}

TEST(RecoveryLadder, NanTileRecoversViaTightenRung) {
  const FaultGuard guard;
  onx::OrderNCalculator calc(tb::xwch_carbon(), guarded_options());
  const System sys = diamond64();
  fault::arm(fault::kOnxNanTile, 1);
  const ForceResult res = calc.compute(sys);
  EXPECT_TRUE(std::isfinite(res.energy));
  for (const Vec3& f : res.forces) {
    EXPECT_TRUE(std::isfinite(f.x) && std::isfinite(f.y) &&
                std::isfinite(f.z));
  }
  EXPECT_EQ(calc.recovery_stats().tighten_retries, 1u);
  EXPECT_EQ(calc.recovery_stats().last_failure, FailureClass::kNonFinite);
}

TEST(RecoveryLadder, ExactFallbackWhenPurificationKeepsFailing) {
  const FaultGuard guard;
  const System sys = diamond64();
  // Clean reference for the energy cross-check.
  onx::OrderNCalculator clean(tb::xwch_carbon(), guarded_options());
  const double e_ref = clean.compute(sys).energy;

  onx::OrderNCalculator calc(tb::xwch_carbon(), guarded_options());
  fault::arm(fault::kOnxNoConverge, 0);  // every purification run stalls
  const ForceResult res = calc.compute(sys);
  EXPECT_EQ(calc.recovery_stats().tighten_retries, 1u);
  EXPECT_EQ(calc.recovery_stats().exact_fallbacks, 1u);
  EXPECT_EQ(calc.recovery_stats().failures, 0u);
  // The exact-diagonalization rung solves the same Hamiltonian, so the
  // energy must agree with the clean purification to its truncation level.
  EXPECT_NEAR(res.energy, e_ref, 1e-2);
}

TEST(RecoveryLadder, ThrowsTypedErrorWhenLadderExhausted) {
  const FaultGuard guard;
  onx::OrderNOptions opt = guarded_options();
  opt.health.exact_fallback = false;
  onx::OrderNCalculator calc(tb::xwch_carbon(), opt);
  const System sys = diamond64();
  fault::arm(fault::kOnxNoConverge, 0);
  try {
    (void)calc.compute(sys);
    FAIL() << "expected NumericsError";
  } catch (const NumericsError& e) {
    EXPECT_EQ(e.failure_class(), FailureClass::kNonConvergence);
    EXPECT_NE(std::string(e.what()).find("non-convergence"),
              std::string::npos);
  }
  EXPECT_EQ(calc.recovery_stats().failures, 1u);
}

TEST(RecoveryLadder, HealthOffCountsUnconvergedInsteadOfRetrying) {
  const FaultGuard guard;
  onx::OrderNCalculator calc(tb::xwch_carbon(), onx::OrderNOptions{});
  const System sys = diamond64();
  fault::arm(fault::kOnxNoConverge, 1);
  const ForceResult res = calc.compute(sys);
  // Historical behavior preserved: the unconverged density is used, but
  // the step is counted and classified rather than passing silently.
  EXPECT_TRUE(std::isfinite(res.energy));
  EXPECT_FALSE(calc.last_purification().converged);
  EXPECT_EQ(calc.recovery_stats().unconverged_steps, 1u);
  EXPECT_EQ(calc.recovery_stats().fp64_retries, 0u);
  EXPECT_EQ(calc.recovery_stats().last_failure,
            FailureClass::kNonConvergence);
  // The next (fault-free) step is healthy and leaves the counter alone.
  (void)calc.compute(sys);
  EXPECT_EQ(calc.recovery_stats().unconverged_steps, 1u);
}

TEST(RecoveryLadder, HealthOnIsBitIdenticalWhenNothingFails) {
  // Acceptance: with no faults armed, the guarded path must be
  // bit-identical to the unguarded engine -- the scans only read results.
  const System sys = diamond64();
  onx::OrderNCalculator off(tb::xwch_carbon(), onx::OrderNOptions{});
  onx::OrderNCalculator on(tb::xwch_carbon(), guarded_options());
  const ForceResult a = off.compute(sys);
  const ForceResult b = on.compute(sys);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.band_energy, b.band_energy);
  ASSERT_EQ(a.forces.size(), b.forces.size());
  for (std::size_t i = 0; i < a.forces.size(); ++i) {
    EXPECT_EQ(a.forces[i].x, b.forces[i].x) << "atom " << i;
    EXPECT_EQ(a.forces[i].y, b.forces[i].y) << "atom " << i;
    EXPECT_EQ(a.forces[i].z, b.forces[i].z) << "atom " << i;
  }
  EXPECT_EQ(on.recovery_stats().fp64_retries, 0u);
  EXPECT_EQ(on.recovery_stats().tighten_retries, 0u);
  EXPECT_EQ(on.recovery_stats().exact_fallbacks, 0u);
}

}  // namespace
}  // namespace tbmd
