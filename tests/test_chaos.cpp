// End-to-end chaos tests for the job runner: deterministic fault injection
// drives torn-checkpoint kills, pre-rename crashes, worker throws, and
// watchdog stalls through the full sweep machinery, and every recovery
// (.prev fallback, bounded retry, resume-after-preemption) must land
// bit-identically on the uninterrupted trajectory.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/structures/builders.hpp"
#include "src/svc/checkpoint.hpp"
#include "src/svc/job_runner.hpp"
#include "src/svc/job_spec.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_point.hpp"

namespace tbmd::svc {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the system temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("tbmd_chaos_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

/// The fault registry is process-global: bracket every test with a full
/// disarm so a failing assertion cannot leak an armed site into the next.
struct FaultGuard {
  FaultGuard() { fault::disarm_all(); }
  ~FaultGuard() { fault::disarm_all(); }
};

/// Small LJ argon job: fast enough to re-run several recovery variants.
JobSpec lj_job(const std::string& name, long steps, long checkpoint_every) {
  JobSpec s;
  s.name = name;
  s.structure = "fcc";
  s.element = Element::Ar;
  s.lattice = 5.26;
  s.cells = {2, 2, 2};
  s.model = "lj";
  s.lj_cutoff = 4.8;
  s.calc.skin = 0.4;
  s.dt = 2.0;
  s.steps = steps;
  s.temperature = 60.0;
  s.seed = 9;
  s.sample_every = 0;
  s.checkpoint_every = checkpoint_every;
  return s;
}

std::vector<JobResult> run_sweep(const std::vector<JobSpec>& jobs,
                                 const std::string& dir, int retries = 0,
                                 double watchdog_s = 0.0) {
  SweepOptions opt;
  opt.workers = 1;
  opt.output_dir = dir;
  opt.resume = true;
  opt.verbose = false;
  opt.max_job_retries = retries;
  opt.retry_backoff_s = 0.001;
  opt.step_watchdog_s = watchdog_s;
  return JobRunner(jobs, opt).run();
}

/// EXPECT bit-identical checkpoints: step, positions, velocities, and
/// freshly recomputed energy/forces must match to the last ulp.
void expect_bit_identical(const JobSpec& spec, const std::string& ckpt_a,
                          const std::string& ckpt_b) {
  const Checkpoint a = read_checkpoint(ckpt_a);
  const Checkpoint b = read_checkpoint(ckpt_b);
  ASSERT_EQ(a.step, b.step);
  ASSERT_EQ(a.system.size(), b.system.size());
  for (std::size_t i = 0; i < a.system.size(); ++i) {
    EXPECT_EQ(a.system.positions()[i], b.system.positions()[i]) << "atom " << i;
    EXPECT_EQ(a.system.velocities()[i], b.system.velocities()[i])
        << "atom " << i;
  }
  const auto calc_a = spec.make_calculator(a.system);
  const auto calc_b = spec.make_calculator(b.system);
  const ForceResult fa = calc_a->compute(a.system);
  const ForceResult fb = calc_b->compute(b.system);
  EXPECT_EQ(fa.energy, fb.energy);
  for (std::size_t i = 0; i < fa.forces.size(); ++i) {
    EXPECT_EQ(fa.forces[i], fb.forces[i]) << "atom " << i;
  }
}

/// Run `spec` cleanly in its own directory and return the final checkpoint
/// path (the bit-identity reference for the chaos variants).
std::string reference_checkpoint(const JobSpec& spec, const ScratchDir& dir) {
  const std::vector<JobResult> res = run_sweep({spec}, dir.path());
  EXPECT_EQ(res[0].status, JobStatus::kCompleted);
  return dir.file(spec.name + ".ckpt");
}

TEST(Chaos, TornCheckpointKillResumesFromPrev) {
  const FaultGuard guard;
  const JobSpec spec = lj_job("torn", 6, 2);
  ScratchDir ref_dir("torn_ref");
  const std::string ref_ckpt = reference_checkpoint(spec, ref_dir);

  ScratchDir dir("torn");
  // The second checkpoint write (step 4) tears: a partial payload lands
  // under a stale CRC and the writer throws as an injected kill.
  fault::arm(fault::kCkptTornWrite, 2);
  {
    const std::vector<JobResult> res = run_sweep({spec}, dir.path());
    EXPECT_EQ(res[0].status, JobStatus::kFailed);
    EXPECT_EQ(res[0].failure_class, "error");
  }
  const std::string ckpt = dir.file("torn.ckpt");
  EXPECT_THROW((void)read_checkpoint(ckpt), Error);  // torn primary
  ASSERT_TRUE(fs::exists(ckpt + ".prev"));           // rotated step 2

  // Recovery: the resumed run must fall back to .prev and end up
  // bit-identical to the uninterrupted reference.
  fault::disarm_all();
  const std::vector<JobResult> res = run_sweep({spec}, dir.path());
  EXPECT_EQ(res[0].status, JobStatus::kCompleted);
  EXPECT_TRUE(res[0].resumed);
  EXPECT_TRUE(res[0].resumed_from_prev);
  EXPECT_EQ(res[0].steps_done, 6);
  expect_bit_identical(spec, ckpt, ref_ckpt);
}

TEST(Chaos, CrashBeforeRenameKeepsPrimaryCheckpoint) {
  const FaultGuard guard;
  const JobSpec spec = lj_job("crash", 6, 2);
  ScratchDir ref_dir("crash_ref");
  const std::string ref_ckpt = reference_checkpoint(spec, ref_dir);

  ScratchDir dir("crash");
  // The injected kill lands after the temp file is written but before the
  // rename: the step-2 checkpoint at the primary path stays intact.
  fault::arm(fault::kCkptCrashBeforeRename, 2);
  {
    const std::vector<JobResult> res = run_sweep({spec}, dir.path());
    EXPECT_EQ(res[0].status, JobStatus::kFailed);
  }
  const std::string ckpt = dir.file("crash.ckpt");
  EXPECT_EQ(read_checkpoint(ckpt).step, 2);

  fault::disarm_all();
  const std::vector<JobResult> res = run_sweep({spec}, dir.path());
  EXPECT_EQ(res[0].status, JobStatus::kCompleted);
  EXPECT_TRUE(res[0].resumed);
  EXPECT_FALSE(res[0].resumed_from_prev);
  expect_bit_identical(spec, ckpt, ref_ckpt);
}

TEST(Chaos, WorkerThrowIsRetriedToCompletion) {
  const FaultGuard guard;
  const JobSpec spec = lj_job("retry", 4, 0);
  ScratchDir ref_dir("retry_ref");
  const std::string ref_ckpt = reference_checkpoint(spec, ref_dir);

  ScratchDir dir("retry");
  // The first step of the first attempt throws before integrating, so the
  // retry starts from scratch and must reproduce the clean trajectory.
  fault::arm(fault::kSvcWorkerThrow, 1);
  const std::vector<JobResult> res =
      run_sweep({spec}, dir.path(), /*retries=*/1);
  EXPECT_EQ(res[0].status, JobStatus::kCompleted);
  EXPECT_EQ(res[0].attempts, 2);
  EXPECT_EQ(res[0].steps_done, 4);
  expect_bit_identical(spec, dir.file("retry.ckpt"), ref_ckpt);
}

TEST(Chaos, WorkerThrowWithoutRetriesFailsFast) {
  const FaultGuard guard;
  ScratchDir dir("nofret");
  const JobSpec spec = lj_job("nofret", 4, 0);
  fault::arm(fault::kSvcWorkerThrow, 1);
  const std::vector<JobResult> res = run_sweep({spec}, dir.path());
  EXPECT_EQ(res[0].status, JobStatus::kFailed);
  EXPECT_EQ(res[0].attempts, 1);
  EXPECT_EQ(res[0].failure_class, "error");
  EXPECT_NE(res[0].error.find("injected worker failure"), std::string::npos);
}

TEST(Chaos, WatchdogPreemptsStalledStepThenResumes) {
  const FaultGuard guard;
  const JobSpec spec = lj_job("stall", 6, 0);
  ScratchDir ref_dir("stall_ref");
  const std::string ref_ckpt = reference_checkpoint(spec, ref_dir);

  ScratchDir dir("stall");
  // The first step stalls 100 ms against a 50 ms watchdog: the job parks
  // at a fresh step-1 checkpoint instead of hogging its worker.
  fault::arm(fault::kSvcStall, 1);
  {
    const std::vector<JobResult> res =
        run_sweep({spec}, dir.path(), /*retries=*/0, /*watchdog_s=*/0.05);
    EXPECT_EQ(res[0].status, JobStatus::kPreempted);
    EXPECT_EQ(res[0].failure_class, "watchdog");
    EXPECT_EQ(res[0].steps_done, 1);
  }
  const std::string ckpt = dir.file("stall.ckpt");
  EXPECT_EQ(read_checkpoint(ckpt).step, 1);

  fault::disarm_all();
  const std::vector<JobResult> res =
      run_sweep({spec}, dir.path(), /*retries=*/0, /*watchdog_s=*/0.05);
  EXPECT_EQ(res[0].status, JobStatus::kCompleted);
  EXPECT_TRUE(res[0].resumed);
  expect_bit_identical(spec, ckpt, ref_ckpt);
}

TEST(Chaos, SpecFaultsFieldArmsRegistryThroughRunner) {
  const FaultGuard guard;
  ScratchDir dir("specfaults");
  JobSpec spec = lj_job("specfaults", 4, 0);
  spec.faults = "svc.worker_throw@1";
  const std::vector<JobResult> res = run_sweep({spec}, dir.path());
  EXPECT_EQ(res[0].status, JobStatus::kFailed);
  EXPECT_NE(res[0].error.find("injected worker failure"), std::string::npos);
  EXPECT_EQ(fault::fired(fault::kSvcWorkerThrow), 1);
}

TEST(Chaos, SummaryCsvCarriesFailureClassAndAttempts) {
  const FaultGuard guard;
  ScratchDir dir("csv");
  fault::arm(fault::kSvcWorkerThrow, 1);
  const std::vector<JobResult> res =
      run_sweep({lj_job("csvjob", 4, 0)}, dir.path(), /*retries=*/1);
  EXPECT_EQ(res[0].status, JobStatus::kCompleted);
  EXPECT_EQ(res[0].attempts, 2);

  std::ifstream is(dir.file("sweep_summary.csv"));
  ASSERT_TRUE(is.good());
  std::string header;
  std::string row;
  std::getline(is, header);
  std::getline(is, row);
  EXPECT_EQ(header,
            "name,status,resumed,steps_done,steps_run,final_energy_eV,"
            "final_temperature_K,wall_s,failure_class,attempts,error");
  EXPECT_NE(row.find("csvjob,completed"), std::string::npos);
  // The attempts column records that the job-level retry fired.
  EXPECT_NE(row.find(",2,"), std::string::npos);
}

}  // namespace
}  // namespace tbmd::svc
