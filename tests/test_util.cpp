// Tests for src/util: RNG, timers, strings, units, error handling.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "src/util/error.hpp"
#include "src/util/parallel.hpp"
#include "src/util/random.hpp"
#include "src/util/string_util.hpp"
#include "src/util/timer.hpp"
#include "src/util/units.hpp"

namespace tbmd {
namespace {

TEST(Units, MassConversionRoundTrip) {
  // 1 amu * (A/fs)^2 should be 103.64 eV of kinetic energy scale.
  EXPECT_NEAR(units::kAmuToProgramMass, 103.6427, 1e-3);
  EXPECT_NEAR(units::amu_to_program_mass(12.011) / 12.011,
              units::kAmuToProgramMass, 1e-12);
}

TEST(Units, BoltzmannConstant) {
  EXPECT_NEAR(units::kBoltzmann * 300.0, 0.02585, 1e-4);  // kT at 300 K
}

TEST(Units, FrequencyConversions) {
  EXPECT_NEAR(units::per_fs_to_thz(0.001), 1.0, 1e-12);
  // 1/fs corresponds to 33356 cm^-1 (c = 2.9979e10 cm/s).
  EXPECT_NEAR(units::per_fs_to_inv_cm(1.0), 33356.4, 0.5);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
    sum3 += g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum3 / n, 0.0, 0.05);  // skewness ~ 0
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(5.0, 2.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(sum2 / n - mean * mean, 4.0, 0.1);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.below(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(21);
  EXPECT_THROW((void)rng.below(0), Error);
}

TEST(ErrorHandling, RequireThrowsWithContext) {
  try {
    TBMD_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(PhaseTimers, AccumulatesNamedPhases) {
  PhaseTimers timers;
  timers.add("a", 1.0);
  timers.add("b", 2.0);
  timers.add("a", 0.5);
  EXPECT_DOUBLE_EQ(timers.seconds("a"), 1.5);
  EXPECT_DOUBLE_EQ(timers.seconds("b"), 2.0);
  EXPECT_DOUBLE_EQ(timers.total(), 3.5);
  EXPECT_DOUBLE_EQ(timers.seconds("missing"), 0.0);
  EXPECT_EQ(timers.phases().size(), 2u);
}

TEST(PhaseTimers, ScopeChargesOnDestruction) {
  PhaseTimers timers;
  {
    auto s = timers.scope("x");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(timers.seconds("x"), 0.005);
}

TEST(PhaseTimers, ResetZeroesButKeepsPhases) {
  PhaseTimers timers;
  timers.add("a", 1.0);
  timers.reset();
  EXPECT_DOUBLE_EQ(timers.seconds("a"), 0.0);
  EXPECT_EQ(timers.phases().size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(Strings, SplitWhitespace) {
  const auto t = split_whitespace("  a  bb\tccc \n d ");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
  EXPECT_EQ(t[3], "d");
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Strings, SplitDelimiterKeepsEmptyFields) {
  const auto t = split("a,,b,", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[2], "b");
  EXPECT_EQ(t[3], "");
}

TEST(Strings, CaseInsensitiveEquality) {
  EXPECT_TRUE(iequals("Si", "si"));
  EXPECT_TRUE(iequals("ABC", "abc"));
  EXPECT_FALSE(iequals("ab", "abc"));
  EXPECT_FALSE(iequals("ab", "ac"));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.25", "t"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3", "t"), -1e-3);
  EXPECT_THROW((void)parse_double("abc", "t"), Error);
  EXPECT_THROW((void)parse_double("1.5x", "t"), Error);
  EXPECT_THROW((void)parse_double("", "t"), Error);
}

TEST(Strings, ParseLong) {
  EXPECT_EQ(parse_long("42", "t"), 42);
  EXPECT_EQ(parse_long("-7", "t"), -7);
  EXPECT_THROW((void)parse_long("4.2", "t"), Error);
  EXPECT_THROW((void)parse_long("", "t"), Error);
}

TEST(Parallel, ThreadCountIsPositive) {
  EXPECT_GE(par::max_threads(), 1);
}

TEST(Parallel, SetNumThreadsRoundTrips) {
  const int before = par::max_threads();
  par::set_num_threads(1);
  EXPECT_EQ(par::max_threads(), 1);
  par::set_num_threads(before);
  EXPECT_EQ(par::max_threads(), before);
}

// The remaining Parallel tests pin down the contract that must hold
// identically with and without -fopenmp (CI compiles and runs both
// configurations via the TBMD_NO_OPENMP option).

TEST(Parallel, ThreadIdIsZeroOutsideParallelRegion) {
  EXPECT_EQ(par::thread_id(), 0);
}

TEST(Parallel, OpenmpFlagMatchesThreadCeiling) {
  if (!par::openmp_enabled()) {
    // Serial build: the wrappers must report exactly one thread, always.
    EXPECT_EQ(par::max_threads(), 1);
    par::set_num_threads(8);  // must be an accepted no-op
    EXPECT_EQ(par::max_threads(), 1);
  } else {
    EXPECT_GE(par::max_threads(), 1);
  }
}

TEST(Parallel, WorthParallelizingThreshold) {
  EXPECT_FALSE(par::worth_parallelizing(0, 1000));
  EXPECT_FALSE(par::worth_parallelizing(100, 500));    // 50'000: at threshold
  EXPECT_TRUE(par::worth_parallelizing(100, 501));     // just above
  EXPECT_TRUE(par::worth_parallelizing(1'000'000, 1));
}

}  // namespace
}  // namespace tbmd
