// Tests for the classical baselines: Lennard-Jones and Tersoff.

#include <gtest/gtest.h>

#include <cmath>

#include "src/potentials/lennard_jones.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/util/random.hpp"

namespace tbmd::potentials {
namespace {

double fd_force(Calculator& calc, System& s, std::size_t atom, int axis,
                double h = 1e-6) {
  Vec3 dr{axis == 0 ? h : 0.0, axis == 1 ? h : 0.0, axis == 2 ? h : 0.0};
  s.positions()[atom] += dr;
  const double ep = calc.compute(s).energy;
  s.positions()[atom] -= 2.0 * dr;
  const double em = calc.compute(s).energy;
  s.positions()[atom] += dr;
  return -(ep - em) / (2.0 * h);
}

// --- Lennard-Jones -------------------------------------------------------

TEST(LennardJones, DimerMinimumAtTwoSixthSigma) {
  LennardJonesParams p;
  p.shift_energy = false;
  LennardJonesCalculator calc(p);
  const double rmin = std::pow(2.0, 1.0 / 6.0) * p.sigma;

  System at_min = structures::dimer(Element::Ar, rmin);
  const ForceResult r = calc.compute(at_min);
  EXPECT_NEAR(r.energy, -p.epsilon, 1e-9);
  EXPECT_NEAR(norm(r.forces[0]), 0.0, 1e-9);

  // Energy rises on either side.
  System closer = structures::dimer(Element::Ar, rmin - 0.1);
  System farther = structures::dimer(Element::Ar, rmin + 0.1);
  EXPECT_GT(calc.compute(closer).energy, r.energy);
  EXPECT_GT(calc.compute(farther).energy, r.energy);
}

TEST(LennardJones, ShiftRemovesCutoffStep) {
  LennardJonesParams p;
  p.cutoff = 6.0;
  p.shift_energy = true;
  LennardJonesCalculator calc(p);
  System just_inside = structures::dimer(Element::Ar, 5.999);
  EXPECT_NEAR(calc.compute(just_inside).energy, 0.0, 1e-5);
  System outside = structures::dimer(Element::Ar, 6.001);
  EXPECT_DOUBLE_EQ(calc.compute(outside).energy, 0.0);
}

TEST(LennardJones, ForcesMatchFiniteDifference) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  structures::perturb(s, 0.15, 3);
  LennardJonesParams p;
  p.cutoff = 4.8;   // the 10.5 A cell only admits a 5.2 A list radius
  p.skin = 0.4;
  LennardJonesCalculator calc(p);
  const ForceResult r0 = calc.compute(s);
  for (const std::size_t atom : {std::size_t{0}, std::size_t{13}}) {
    for (int axis = 0; axis < 3; ++axis) {
      const double fd = fd_force(calc, s, atom, axis);
      const double an = axis == 0   ? r0.forces[atom].x
                        : axis == 1 ? r0.forces[atom].y
                                    : r0.forces[atom].z;
      EXPECT_NEAR(an, fd, 1e-6);
    }
  }
}

TEST(LennardJones, FccArgonCohesionIsReasonable) {
  // LJ fcc at a = 5.26: cohesive energy ~ 0.08 eV/atom (8.6 eps per atom
  // with full lattice sums; cutoff trims it a bit).
  System s = structures::fcc(Element::Ar, 5.26, 3, 3, 3);
  LennardJonesParams p;
  p.cutoff = 6.5;   // fits the 15.8 A cell
  p.skin = 0.5;
  LennardJonesCalculator calc(p);
  const double e = calc.compute(s).energy / s.size();
  EXPECT_LT(e, -0.05);
  EXPECT_GT(e, -0.12);
}

TEST(LennardJones, NewtonsThirdLaw) {
  System s = structures::random_gas(Element::Ar, 32, 0.012, 2.8, 21);
  LennardJonesParams p;
  p.cutoff = 6.0;   // fits the ~13.9 A gas box
  p.skin = 0.5;
  LennardJonesCalculator calc(p);
  const ForceResult r = calc.compute(s);
  Vec3 total{};
  for (const Vec3& f : r.forces) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-10);
}

// --- Tersoff -------------------------------------------------------------

TEST(Tersoff, SiliconDimerIsBound) {
  TersoffCalculator calc(tersoff_silicon());
  System s = structures::dimer(Element::Si, 2.35);
  const double e = calc.compute(s).energy;
  EXPECT_LT(e, -1.0);  // bound by a few eV
  EXPECT_GT(e, -8.0);
}

TEST(Tersoff, SiliconDiamondNearEquilibriumAtPublishedLattice) {
  // E(a) minimum close to a = 5.43 and cohesive energy ~ -4.63 eV/atom.
  TersoffCalculator calc(tersoff_silicon());
  double best_a = 0.0, best_e = 1e300;
  for (double a = 5.1; a <= 5.8; a += 0.05) {
    System s = structures::diamond(Element::Si, a, 2, 2, 2);
    const double e = calc.compute(s).energy / s.size();
    if (e < best_e) {
      best_e = e;
      best_a = a;
    }
  }
  EXPECT_NEAR(best_a, 5.43, 0.12);
  EXPECT_NEAR(best_e, -4.63, 0.25);
}

TEST(Tersoff, CarbonDiamondCohesion) {
  TersoffCalculator calc(tersoff_carbon());
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  const double e = calc.compute(s).energy / s.size();
  // Tersoff carbon: ~ -7.4 eV/atom at the diamond lattice constant.
  EXPECT_NEAR(e, -7.4, 0.5);
}

TEST(Tersoff, BondOrderWeakensWithCoordination) {
  // The energy per bond must be weaker in diamond (4 neighbors) than in the
  // dimer (1 neighbor) -- the defining bond-order property.
  TersoffCalculator calc(tersoff_silicon());
  System dim = structures::dimer(Element::Si, 2.35);
  const double e_dimer_per_bond = calc.compute(dim).energy;  // one bond

  System dia = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  const double e_bulk_per_bond =
      calc.compute(dia).energy / (2.0 * dia.size());  // 2 bonds/atom
  EXPECT_LT(e_dimer_per_bond, e_bulk_per_bond);
}

class TersoffForces : public ::testing::TestWithParam<int> {};

TEST_P(TersoffForces, MatchFiniteDifference) {
  const int seed = GetParam();
  const bool carbon = (seed % 2 == 0);
  TersoffCalculator calc(carbon ? tersoff_carbon() : tersoff_silicon());
  System s = carbon ? structures::diamond(Element::C, 3.567, 2, 2, 2)
                    : structures::diamond(Element::Si, 5.431, 2, 2, 2);
  structures::perturb(s, 0.12, seed);
  const ForceResult r0 = calc.compute(s);
  Rng rng(seed * 7 + 1);
  for (int probe = 0; probe < 4; ++probe) {
    const std::size_t atom = rng.below(s.size());
    const int axis = static_cast<int>(rng.below(3));
    const double fd = fd_force(calc, s, atom, axis);
    const double an = axis == 0   ? r0.forces[atom].x
                      : axis == 1 ? r0.forces[atom].y
                                  : r0.forces[atom].z;
    EXPECT_NEAR(an, fd, 2e-4) << "atom " << atom << " axis " << axis;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TersoffForces, ::testing::Range(30, 38));

TEST(Tersoff, NewtonsThirdLawOnCluster) {
  TersoffCalculator calc(tersoff_carbon());
  System s = structures::c60();
  structures::perturb(s, 0.05, 41);
  const ForceResult r = calc.compute(s);
  Vec3 total{};
  for (const Vec3& f : r.forces) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

TEST(Tersoff, EquilibriumLatticeHasZeroForces) {
  TersoffCalculator calc(tersoff_silicon());
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  const ForceResult r = calc.compute(s);
  for (const Vec3& f : r.forces) EXPECT_NEAR(norm(f), 0.0, 1e-9);
}

TEST(Tersoff, EnergyIsExtensive) {
  TersoffCalculator calc(tersoff_silicon());
  System small = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  System large = structures::diamond(Element::Si, 5.431, 2, 2, 4);
  const double e_small = calc.compute(small).energy / small.size();
  const double e_large = calc.compute(large).energy / large.size();
  EXPECT_NEAR(e_small, e_large, 1e-9);
}

}  // namespace
}  // namespace tbmd::potentials
