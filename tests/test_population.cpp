// Tests for Mulliken populations, charges and Mayer bond orders.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/linalg/eigen_sym.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/tb/density_matrix.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/tb/population.hpp"

namespace tbmd::tb {
namespace {

struct Electronic {
  NeighborList list;
  linalg::Matrix rho;
};

Electronic solve(const TbModel& m, const System& s,
                 double electronic_temperature = 0.0) {
  Electronic out;
  out.list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const auto h = build_hamiltonian(m, s, out.list);
  const auto eig = linalg::eigh(h);
  const auto occ = occupy(eig.values, s.total_valence_electrons(),
                          electronic_temperature);
  out.rho = density_matrix(eig.vectors, occ.weights);
  return out;
}

TEST(Mulliken, PopulationsSumToElectronCount) {
  const TbModel m = xwch_carbon();
  System s = structures::c60();
  const Electronic e = solve(m, s);
  const auto pop = mulliken_populations(s, e.rho);
  const double total = std::accumulate(pop.begin(), pop.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(s.total_valence_electrons()), 1e-7);
}

TEST(Mulliken, HomonuclearCrystalIsChargeNeutral) {
  // Every atom in diamond is symmetry-equivalent: Mulliken charge ~ 0.
  const TbModel m = gsp_silicon();
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  const Electronic e = solve(m, s);
  for (const double q : mulliken_charges(s, e.rho)) {
    EXPECT_NEAR(q, 0.0, 1e-8);
  }
}

TEST(Mulliken, IsolatedAtomKeepsItsValence) {
  const TbModel m = xwch_carbon();
  System s = structures::chain(Element::C, 2, 12.0);  // beyond cutoff
  // The six p levels of two isolated atoms are degenerate, so zero-T
  // aufbau filling may break per-atom symmetry arbitrarily; Fermi smearing
  // shares degenerate states equally and must give 4 electrons per atom.
  const Electronic e = solve(m, s, /*electronic_temperature=*/300.0);
  const auto pop = mulliken_populations(s, e.rho);
  EXPECT_NEAR(pop[0], 4.0, 1e-6);
  EXPECT_NEAR(pop[1], 4.0, 1e-6);
}

TEST(MayerBondOrder, DiamondBondsAreSingle) {
  const TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  const Electronic e = solve(m, s);
  const auto bonds = mayer_bond_orders(s, e.list, e.rho);
  // Count strong first-shell bonds: diamond has 2 per atom in the half
  // list; their Mayer order should be close to a single bond.
  std::size_t strong = 0;
  for (const BondOrder& b : bonds) {
    if (b.length < 1.7) {
      EXPECT_NEAR(b.order, 1.0, 0.35) << "bond " << b.i << "-" << b.j;
      ++strong;
    }
  }
  EXPECT_EQ(strong, 2 * s.size());
}

TEST(MayerBondOrder, GrapheneBondsExceedSingle) {
  // Conjugated pi system: C-C order in graphene ~ 1.2-1.5, clearly above
  // the diamond single bond.
  const TbModel m = xwch_carbon();
  System dia = structures::diamond(Element::C, 3.567, 2, 2, 2);
  System gra = structures::graphene(Element::C, 1.42, 3, 2);
  const Electronic ed = solve(m, dia);
  const Electronic eg = solve(m, gra);

  auto mean_strong_order = [](const System& sys, const Electronic& e) {
    const auto bonds = mayer_bond_orders(sys, e.list, e.rho);
    double acc = 0.0;
    std::size_t cnt = 0;
    for (const BondOrder& b : bonds) {
      if (b.length < 1.7) {
        acc += b.order;
        ++cnt;
      }
    }
    return acc / static_cast<double>(cnt);
  };
  EXPECT_GT(mean_strong_order(gra, eg), mean_strong_order(dia, ed) + 0.1);
}

TEST(MayerBondOrder, VanishesForDistantAtoms) {
  const TbModel m = xwch_carbon();
  System s = structures::chain(Element::C, 2, 12.0);
  Electronic e = solve(m, s);
  // Use a list with a huge cutoff so the pair is present but uncoupled.
  NeighborList far_list;
  far_list.build(s.positions(), s.cell(), {13.0, 0.0});
  const auto bonds = mayer_bond_orders(s, far_list, e.rho);
  ASSERT_EQ(bonds.size(), 1u);
  EXPECT_NEAR(bonds[0].order, 0.0, 1e-10);
}

TEST(MayerBondOrder, SizeMismatchThrows) {
  const TbModel m = xwch_carbon();
  System s = structures::dimer(Element::C, 1.4);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  linalg::Matrix wrong(4, 4, 0.0);
  EXPECT_THROW((void)mayer_bond_orders(s, list, wrong), Error);
  EXPECT_THROW((void)mulliken_populations(s, wrong), Error);
}

}  // namespace
}  // namespace tbmd::tb
