// Tests for the linked-cell Verlet neighbor list against the brute-force
// reference, including periodic-image shift bookkeeping and the Verlet-skin
// rebuild criterion.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "src/neighbor/neighbor_list.hpp"
#include "src/structures/builders.hpp"
#include "src/util/error.hpp"
#include "src/util/random.hpp"

namespace tbmd {
namespace {

using PairKey = std::tuple<std::size_t, std::size_t>;

std::set<PairKey> pair_set(const std::vector<NeighborPair>& pairs) {
  std::set<PairKey> s;
  for (const auto& p : pairs) s.insert({p.i, p.j});
  return s;
}

std::vector<Vec3> random_positions(std::size_t n, double box,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> r(n);
  for (auto& v : r) {
    v = {rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)};
  }
  return r;
}

TEST(BruteForce, SimplePairGeometry) {
  const std::vector<Vec3> pos{{0, 0, 0}, {1, 0, 0}, {5, 0, 0}};
  const Cell cell;  // cluster
  const auto pairs = brute_force_pairs(pos, cell, 2.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].i, 0u);
  EXPECT_EQ(pairs[0].j, 1u);
  EXPECT_EQ(pairs[0].shift, (Vec3{0, 0, 0}));
}

TEST(BruteForce, PeriodicImageAcrossBoundary) {
  const Cell cell = Cell::cubic(10.0);
  const std::vector<Vec3> pos{{0.5, 5, 5}, {9.5, 5, 5}};
  const auto pairs = brute_force_pairs(pos, cell, 2.0);
  ASSERT_EQ(pairs.size(), 1u);
  // r_ij = r_j + shift - r_i must be the short (1 A) displacement.
  const Vec3 rij = pos[1] + pairs[0].shift - pos[0];
  EXPECT_NEAR(norm(rij), 1.0, 1e-12);
  EXPECT_NEAR(pairs[0].shift.x, -10.0, 1e-12);
}

TEST(BruteForce, CellHeightPreconditionEnforced) {
  const Cell cell = Cell::cubic(4.0);
  const std::vector<Vec3> pos{{0, 0, 0}, {1, 1, 1}};
  EXPECT_THROW((void)brute_force_pairs(pos, cell, 2.5), Error);
}

class NeighborListVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, bool, double>> {};

TEST_P(NeighborListVsBruteForce, SamePairsAsReference) {
  const auto [n, periodic, cutoff] = GetParam();
  const double box = 14.0;
  const auto pos = random_positions(n, box, 1234 + n);
  const Cell cell = periodic ? Cell::cubic(box) : Cell();

  NeighborList list;
  list.build(pos, cell, {cutoff, 0.0});
  const auto reference = brute_force_pairs(pos, cell, cutoff);

  EXPECT_EQ(pair_set(list.half_pairs()), pair_set(reference));

  // Shifts must reproduce the minimum-image displacement.
  for (const auto& p : list.half_pairs()) {
    const Vec3 via_shift = pos[p.j] + p.shift - pos[p.i];
    const Vec3 mi = cell.minimum_image(pos[p.j] - pos[p.i]);
    EXPECT_NEAR(norm(via_shift - mi), 0.0, 1e-10);
    EXPECT_LT(norm(via_shift), cutoff);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, NeighborListVsBruteForce,
    ::testing::Values(std::make_tuple(20, true, 3.0),
                      std::make_tuple(20, false, 3.0),
                      std::make_tuple(150, true, 2.5),
                      std::make_tuple(150, false, 2.5),
                      std::make_tuple(300, true, 3.5),   // binned path
                      std::make_tuple(300, false, 3.5),  // binned, cluster
                      std::make_tuple(500, true, 2.0),
                      std::make_tuple(500, false, 4.0)));

TEST(NeighborList, FullListMirrorsHalfList) {
  const auto pos = random_positions(100, 12.0, 77);
  const Cell cell = Cell::cubic(12.0);
  NeighborList list;
  list.build(pos, cell, {3.0, 0.0});

  std::size_t full_entries = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    for (const auto& e : list.neighbors(i)) {
      ++full_entries;
      // The reverse entry must exist with the opposite shift.
      bool found = false;
      for (const auto& back : list.neighbors(e.j)) {
        if (back.j == i && norm(back.shift + e.shift) < 1e-12) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "missing reverse entry " << e.j << " -> " << i;
    }
  }
  EXPECT_EQ(full_entries, 2 * list.half_pairs().size());
}

TEST(NeighborList, DiamondLatticeCoordination) {
  // First-neighbor shell of diamond: 4 neighbors at sqrt(3)/4 * a.
  const double a = 5.431;
  System s = structures::diamond(Element::Si, a, 2, 2, 2);
  NeighborList list;
  const double first_shell = std::sqrt(3.0) / 4.0 * a;
  list.build(s.positions(), s.cell(), {first_shell + 0.2, 0.0});
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(list.neighbors(i).size(), 4u) << "atom " << i;
    for (const auto& e : list.neighbors(i)) {
      const double r = norm(s.positions()[e.j] + e.shift - s.positions()[i]);
      EXPECT_NEAR(r, first_shell, 1e-9);
    }
  }
}

TEST(NeighborList, SkinDefersRebuild) {
  auto pos = random_positions(64, 12.0, 99);
  const Cell cell = Cell::cubic(12.0);
  NeighborList list;
  const NeighborList::Options opt{3.0, 1.0};
  list.build(pos, cell, opt);
  EXPECT_EQ(list.build_count(), 1u);

  // Displacements below skin/2 must not trigger a rebuild.
  for (auto& r : pos) r += Vec3{0.2, -0.2, 0.1};
  EXPECT_FALSE(list.needs_rebuild(pos));
  EXPECT_FALSE(list.ensure(pos, cell, opt));
  EXPECT_EQ(list.build_count(), 1u);

  // Crossing skin/2 must trigger one.
  pos[0] += Vec3{0.6, 0, 0};
  EXPECT_TRUE(list.needs_rebuild(pos));
  EXPECT_TRUE(list.ensure(pos, cell, opt));
  EXPECT_EQ(list.build_count(), 2u);
}

TEST(NeighborList, SkinListStaysValidWhileAtomsDrift) {
  // Property: as long as no atom moved more than skin/2, every pair within
  // the bare cutoff is still present in the stale list.
  auto pos = random_positions(128, 13.0, 101);
  const Cell cell = Cell::cubic(13.0);
  const double cutoff = 3.0, skin = 1.0;
  NeighborList list;
  list.build(pos, cell, {cutoff, skin});

  Rng rng(555);
  for (auto& r : pos) {
    // |d| <= 0.49 < skin/2 along the diagonal
    r += Vec3{rng.uniform(-0.28, 0.28), rng.uniform(-0.28, 0.28),
              rng.uniform(-0.28, 0.28)};
  }
  ASSERT_FALSE(list.needs_rebuild(pos));

  const auto current = pair_set(brute_force_pairs(pos, cell, cutoff));
  const auto stale = pair_set(list.half_pairs());
  for (const auto& key : current) {
    EXPECT_TRUE(stale.count(key))
        << "pair (" << std::get<0>(key) << "," << std::get<1>(key)
        << ") missing from skinned list";
  }
}

TEST(NeighborList, RejectsTooSmallPeriodicCell) {
  System s = structures::diamond(Element::C, 3.567, 1, 1, 1);
  NeighborList list;
  EXPECT_THROW(list.build(s.positions(), s.cell(), {2.6, 0.5}), Error);
}

TEST(NeighborList, RejectsNonPositiveCutoff) {
  NeighborList list;
  std::vector<Vec3> pos{{0, 0, 0}};
  EXPECT_THROW(list.build(pos, Cell(), {0.0, 0.1}), Error);
  EXPECT_THROW(list.build(pos, Cell(), {1.0, -0.1}), Error);
}

TEST(NeighborList, EmptyAndSingleAtomSystems) {
  NeighborList list;
  std::vector<Vec3> none;
  list.build(none, Cell(), {2.0, 0.1});
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.half_pairs().empty());

  std::vector<Vec3> one{{1, 2, 3}};
  list.build(one, Cell(), {2.0, 0.1});
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.half_pairs().empty());
  EXPECT_TRUE(list.neighbors(0).empty());
}

TEST(NeighborList, MixedPeriodicityGrapheneSlab) {
  System s = structures::graphene(Element::C, 1.42, 4, 3);
  NeighborList list;
  list.build(s.positions(), s.cell(), {1.6, 0.0});
  // Perfect graphene: every atom has exactly 3 first neighbors.
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(list.neighbors(i).size(), 3u) << "atom " << i;
  }
}

}  // namespace
}  // namespace tbmd
