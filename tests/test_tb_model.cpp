// Tests for the tight-binding model definitions and radial functions.

#include <gtest/gtest.h>

#include <cmath>

#include "src/tb/radial.hpp"
#include "src/tb/tb_model.hpp"
#include "src/util/error.hpp"

namespace tbmd::tb {
namespace {

TEST(Models, ShippedParameterSetsAreSane) {
  const TbModel c = xwch_carbon();
  EXPECT_EQ(c.element, Element::C);
  EXPECT_LT(c.bonds.sss, 0.0);   // ss sigma is attractive
  EXPECT_GT(c.bonds.sps, 0.0);
  EXPECT_GT(c.bonds.pps, 0.0);
  EXPECT_LT(c.bonds.ppp, 0.0);
  EXPECT_LT(c.e_s, c.e_p);       // s below p
  EXPECT_GT(c.cutoff(), 2.0);
  EXPECT_EQ(c.repulsion_kind, RepulsionKind::kEmbeddedPolynomial);

  const TbModel si = gsp_silicon();
  EXPECT_EQ(si.element, Element::Si);
  EXPECT_LT(si.bonds.sss, 0.0);
  EXPECT_LT(si.e_s, si.e_p);
  EXPECT_EQ(si.repulsion_kind, RepulsionKind::kPairSum);
  EXPECT_GT(si.cutoff(), 3.0);
}

TEST(Models, LookupByName) {
  EXPECT_EQ(model_by_name("xwch-carbon").element, Element::C);
  EXPECT_EQ(model_by_name("C").element, Element::C);
  EXPECT_EQ(model_by_name("gsp-silicon").element, Element::Si);
  EXPECT_EQ(model_by_name("si").element, Element::Si);
  EXPECT_THROW((void)model_by_name("unobtainium"), Error);
}

TEST(RadialScaling, UnityAtReferenceDistance) {
  for (const TbModel& m : {xwch_carbon(), gsp_silicon()}) {
    const RadialValue v = evaluate_scaling(m.hopping, m.hopping.r0);
    EXPECT_NEAR(v.value, 1.0, 1e-12) << m.name;
    EXPECT_LT(v.derivative, 0.0) << m.name;  // decays with distance
  }
}

TEST(RadialScaling, MonotonicallyDecreasing) {
  const TbModel m = xwch_carbon();
  double prev = 10.0;
  for (double r = 1.0; r < m.hopping.r_cut; r += 0.02) {
    const double v = evaluate_scaling(m.hopping, r).value;
    EXPECT_LT(v, prev) << "r = " << r;
    EXPECT_GE(v, 0.0);
    prev = v;
  }
}

TEST(RadialScaling, ZeroAtAndBeyondCutoff) {
  const TbModel m = xwch_carbon();
  for (const double r : {m.hopping.r_cut, m.hopping.r_cut + 0.1, 5.0}) {
    const RadialValue v = evaluate_scaling(m.hopping, r);
    EXPECT_DOUBLE_EQ(v.value, 0.0);
    EXPECT_DOUBLE_EQ(v.derivative, 0.0);
  }
}

TEST(RadialScaling, ContinuousAcrossTaperStart) {
  const TbModel m = xwch_carbon();
  const double r1 = m.hopping.r_taper;
  const double below = evaluate_scaling(m.hopping, r1 - 1e-9).value;
  const double above = evaluate_scaling(m.hopping, r1 + 1e-9).value;
  EXPECT_NEAR(below, above, 1e-7);
  // Derivative continuity (the taper is C^1).
  const double dbelow = evaluate_scaling(m.hopping, r1 - 1e-9).derivative;
  const double dabove = evaluate_scaling(m.hopping, r1 + 1e-9).derivative;
  EXPECT_NEAR(dbelow, dabove, 1e-5);
}

TEST(RadialScaling, ContinuousNearHardCutoff) {
  const TbModel m = gsp_silicon();
  const double v = evaluate_scaling(m.hopping, m.hopping.r_cut - 1e-7).value;
  EXPECT_NEAR(v, 0.0, 1e-5);
}

class RadialDerivative : public ::testing::TestWithParam<double> {};

TEST_P(RadialDerivative, MatchesFiniteDifference) {
  const double r = GetParam();
  for (const TbModel& m : {xwch_carbon(), gsp_silicon()}) {
    for (const RadialScaling& p : {m.hopping, m.repulsive}) {
      if (r >= p.r_cut - 1e-4) continue;
      const double h = 1e-6;
      const double fplus = evaluate_scaling(p, r + h).value;
      const double fminus = evaluate_scaling(p, r - h).value;
      const double fd = (fplus - fminus) / (2.0 * h);
      const double an = evaluate_scaling(p, r).derivative;
      EXPECT_NEAR(an, fd, 1e-5 * std::max(1.0, std::fabs(fd)))
          << m.name << " at r = " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SampleRadii, RadialDerivative,
                         ::testing::Values(1.1, 1.42, 1.54, 1.9, 2.2, 2.35,
                                           2.5, 2.55, 3.0, 3.45, 3.6, 3.75));

TEST(RadialScaling, ThrowsAtZeroDistance) {
  const TbModel m = xwch_carbon();
  EXPECT_THROW((void)evaluate_scaling(m.hopping, 0.0), Error);
  EXPECT_THROW((void)evaluate_scaling(m.hopping, 1e-9), Error);
}

TEST(Polynomial, ValueAndDerivative) {
  // f(x) = 1 + 2x - x^2 + 0.5 x^3 - 0.25 x^4
  const std::array<double, 5> c{1.0, 2.0, -1.0, 0.5, -0.25};
  for (const double x : {0.0, 0.5, 1.0, -1.5, 3.0}) {
    const RadialValue v = evaluate_polynomial(c, x);
    const double expect =
        1.0 + 2.0 * x - x * x + 0.5 * x * x * x - 0.25 * x * x * x * x;
    const double dexpect = 2.0 - 2.0 * x + 1.5 * x * x - x * x * x;
    EXPECT_NEAR(v.value, expect, 1e-12);
    EXPECT_NEAR(v.derivative, dexpect, 1e-12);
  }
}

TEST(Polynomial, XwchEmbeddingIsNegativeAtZeroCoordination) {
  // f(0) = c0 < 0 for the XWCH fit (free-atom limit of the repulsion).
  const TbModel m = xwch_carbon();
  EXPECT_LT(evaluate_polynomial(m.embed_coeff, 0.0).value, 0.0);
  // and grows with coordination pressure:
  EXPECT_GT(evaluate_polynomial(m.embed_coeff, 30.0).value,
            evaluate_polynomial(m.embed_coeff, 0.0).value);
}

}  // namespace
}  // namespace tbmd::tb
