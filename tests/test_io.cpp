// Tests for the I/O layer: XYZ round trips, trajectories, tables, logging.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/io/logger.hpp"
#include "src/io/table.hpp"
#include "src/io/xyz.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/util/error.hpp"

namespace tbmd::io {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Xyz, ClusterRoundTrip) {
  System a = structures::c60();
  std::stringstream ss;
  write_xyz(ss, a, "c60 test");
  System b;
  ASSERT_TRUE(read_xyz(ss, b));
  ASSERT_EQ(b.size(), a.size());
  EXPECT_FALSE(b.cell().periodic());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(b.species()[i], a.species()[i]);
    EXPECT_NEAR(norm(b.positions()[i] - a.positions()[i]), 0.0, 1e-9);
  }
}

TEST(Xyz, PeriodicLatticeRoundTrip) {
  System a = structures::diamond(Element::Si, 5.431, 2, 1, 1);
  std::stringstream ss;
  write_xyz(ss, a, "");
  System b;
  ASSERT_TRUE(read_xyz(ss, b));
  EXPECT_TRUE(b.cell().periodic(0));
  EXPECT_TRUE(b.cell().periodic(1));
  EXPECT_TRUE(b.cell().periodic(2));
  EXPECT_NEAR(b.cell().volume(), a.cell().volume(), 1e-8);
  EXPECT_NEAR(b.cell().h()(0, 0), 5.431 * 2, 1e-9);
}

TEST(Xyz, MixedPeriodicityPreserved) {
  System a = structures::graphene(Element::C, 1.42, 2, 2);
  std::stringstream ss;
  write_xyz(ss, a);
  System b;
  ASSERT_TRUE(read_xyz(ss, b));
  EXPECT_TRUE(b.cell().periodic(0));
  EXPECT_TRUE(b.cell().periodic(1));
  EXPECT_FALSE(b.cell().periodic(2));
}

TEST(Xyz, FileRoundTrip) {
  const std::string path = temp_path("tbmd_test_roundtrip.xyz");
  System a = structures::dimer(Element::C, 1.3);
  write_xyz_file(path, a, "dimer");
  const System b = read_xyz_file(path);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_NEAR(b.distance(0, 1), 1.3, 1e-10);
  std::remove(path.c_str());
}

TEST(Xyz, MultiFrameStreamReadsSequentially) {
  std::stringstream ss;
  write_xyz(ss, structures::dimer(Element::C, 1.2), "frame0");
  write_xyz(ss, structures::dimer(Element::Si, 2.2), "frame1");
  System f0, f1, f2;
  EXPECT_TRUE(read_xyz(ss, f0));
  EXPECT_TRUE(read_xyz(ss, f1));
  EXPECT_FALSE(read_xyz(ss, f2));  // end of stream
  EXPECT_EQ(f0.species()[0], Element::C);
  EXPECT_EQ(f1.species()[0], Element::Si);
}

TEST(Xyz, MalformedInputThrows) {
  {
    std::stringstream ss("not_a_number\ncomment\n");
    System s;
    EXPECT_THROW((void)read_xyz(ss, s), Error);
  }
  {
    std::stringstream ss("2\ncomment\nC 0 0 0\n");  // truncated
    System s;
    EXPECT_THROW((void)read_xyz(ss, s), Error);
  }
  {
    std::stringstream ss("1\ncomment\nC 0 0\n");  // missing coordinate
    System s;
    EXPECT_THROW((void)read_xyz(ss, s), Error);
  }
  {
    std::stringstream ss("1\ncomment\nXx 0 0 0\n");  // unknown element
    System s;
    EXPECT_THROW((void)read_xyz(ss, s), Error);
  }
}

TEST(Xyz, MissingFileThrows) {
  EXPECT_THROW((void)read_xyz_file("/nonexistent/really/not/here.xyz"), Error);
}

TEST(Trajectory, AppendsFrames) {
  const std::string path = temp_path("tbmd_test_traj.xyz");
  {
    TrajectoryWriter w(path);
    System s = structures::dimer(Element::C, 1.3);
    w.add_frame(s, "t=0");
    s.positions()[0].x += 0.1;
    w.add_frame(s, "t=1");
    EXPECT_EQ(w.frames_written(), 2u);
  }
  std::ifstream f(path);
  System f0, f1;
  EXPECT_TRUE(read_xyz(f, f0));
  EXPECT_TRUE(read_xyz(f, f1));
  EXPECT_NE(f0.positions()[0].x, f1.positions()[0].x);
  std::remove(path.c_str());
}

TEST(TableOutput, AlignedTextAndCsv) {
  Table t({"n", "time_ms", "label"});
  t.add_row({"8", "1.25", "small"});
  t.add_row({"512", "930.5", "large"});
  EXPECT_EQ(t.rows(), 2u);

  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("time_ms"), std::string::npos);
  EXPECT_NE(text.find("930.5"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);

  const std::string path = temp_path("tbmd_test_table.csv");
  t.write_csv(path);
  std::ifstream f(path);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "n,time_ms,label");
  std::string row;
  std::getline(f, row);
  EXPECT_EQ(row, "8,1.25,small");
  std::remove(path.c_str());
}

TEST(TableOutput, NumericRowFormatting) {
  Table t({"a", "b"});
  t.add_numeric_row({1.23456789, 1000.0}, 4);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.235"), std::string::npos);
}

TEST(TableOutput, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Logger, ThresholdFiltersMessages) {
  // log_message writes to stderr; capture via gtest's stderr capture.
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_info("should be dropped");
  log_warn("should appear: ", 42);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("dropped"), std::string::npos);
  EXPECT_NE(err.find("should appear: 42"), std::string::npos);
  set_log_level(LogLevel::kInfo);
}

}  // namespace
}  // namespace tbmd::io
