// Tests for the Slater-Koster sp3 two-center blocks: analytic structure,
// symmetry relations, rotational invariance, and derivative correctness.

#include <gtest/gtest.h>

#include <cmath>

#include "src/tb/radial.hpp"
#include "src/tb/slater_koster.hpp"
#include "src/util/random.hpp"

namespace tbmd::tb {
namespace {

Vec3 random_unit(Rng& rng) {
  Vec3 v;
  do {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
  } while (norm2_sq(v) < 1e-3);
  return normalized(v);
}

TEST(SkBlock, BondAlongZHasTextbookStructure) {
  const TbModel m = xwch_carbon();
  const double r = m.hopping.r0;  // scaling = 1 there
  const SkBlock b = sk_block(m, {0, 0, r});

  // s-s
  EXPECT_NEAR(b.h[0][0], m.bonds.sss, 1e-12);
  // s-pz = V_sps; s-px = s-py = 0
  EXPECT_NEAR(b.h[0][3], m.bonds.sps, 1e-12);
  EXPECT_NEAR(b.h[0][1], 0.0, 1e-12);
  EXPECT_NEAR(b.h[0][2], 0.0, 1e-12);
  // pz-s = -V_sps
  EXPECT_NEAR(b.h[3][0], -m.bonds.sps, 1e-12);
  // pz-pz = V_pps; px-px = py-py = V_ppp
  EXPECT_NEAR(b.h[3][3], m.bonds.pps, 1e-12);
  EXPECT_NEAR(b.h[1][1], m.bonds.ppp, 1e-12);
  EXPECT_NEAR(b.h[2][2], m.bonds.ppp, 1e-12);
  // no sigma-pi mixing on-axis
  EXPECT_NEAR(b.h[1][2], 0.0, 1e-12);
  EXPECT_NEAR(b.h[1][3], 0.0, 1e-12);
}

TEST(SkBlock, ReversedBondIsTranspose) {
  // Hermiticity: <i a|H|j b> for bond d equals <j b|H|i a> for bond -d.
  const TbModel m = xwch_carbon();
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 d = random_unit(rng) * rng.uniform(1.0, 2.4);
    const SkBlock fwd = sk_block(m, d);
    const SkBlock rev = sk_block(m, -d);
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        EXPECT_NEAR(fwd.h[a][b], rev.h[b][a], 1e-12);
      }
    }
  }
}

TEST(SkBlock, ZeroBeyondCutoff) {
  const TbModel m = xwch_carbon();
  const SkBlock b = sk_block(m, {0, 0, m.hopping.r_cut + 0.01});
  for (int a = 0; a < 4; ++a) {
    for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(b.h[a][c], 0.0);
  }
}

TEST(SkBlock, PPBlockDecomposesIntoSigmaAndPi) {
  // For any direction u: eigenvalues of the 3x3 pp block are
  // {V_pps, V_ppp, V_ppp} scaled by s(r); check via trace and u-projection.
  const TbModel m = gsp_silicon();
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const double r = rng.uniform(2.0, 3.2);
    const Vec3 u = random_unit(rng);
    const SkBlock b = sk_block(m, u * r);
    const double s = evaluate_scaling(m.hopping, r).value;

    // u^T P u = V_pps * s.
    double upu = 0.0;
    const double uv[3] = {u.x, u.y, u.z};
    for (int p = 0; p < 3; ++p) {
      for (int q = 0; q < 3; ++q) upu += uv[p] * b.h[p + 1][q + 1] * uv[q];
    }
    EXPECT_NEAR(upu, m.bonds.pps * s, 1e-10);

    // trace = (V_pps + 2 V_ppp) * s.
    const double tr = b.h[1][1] + b.h[2][2] + b.h[3][3];
    EXPECT_NEAR(tr, (m.bonds.pps + 2.0 * m.bonds.ppp) * s, 1e-10);
  }
}

TEST(SkBlock, SPRowIsProportionalToDirection) {
  const TbModel m = xwch_carbon();
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const double r = rng.uniform(1.1, 2.3);
    const Vec3 u = random_unit(rng);
    const SkBlock b = sk_block(m, u * r);
    const double s = evaluate_scaling(m.hopping, r).value;
    EXPECT_NEAR(b.h[0][1], u.x * m.bonds.sps * s, 1e-10);
    EXPECT_NEAR(b.h[0][2], u.y * m.bonds.sps * s, 1e-10);
    EXPECT_NEAR(b.h[0][3], u.z * m.bonds.sps * s, 1e-10);
    // p-s side carries the odd-parity sign.
    EXPECT_NEAR(b.h[1][0], -b.h[0][1], 1e-12);
  }
}

class SkDerivative : public ::testing::TestWithParam<int> {};

TEST_P(SkDerivative, MatchesFiniteDifference) {
  const int seed = GetParam();
  Rng rng(seed);
  for (const TbModel& m : {xwch_carbon(), gsp_silicon()}) {
    const double rmin = 0.7 * m.hopping.r0;
    const double rmax = m.hopping.r_cut - 0.05;
    const Vec3 d = random_unit(rng) * rng.uniform(rmin, rmax);

    SkBlock block;
    SkBlockDerivative deriv;
    sk_block_with_derivative(m, d, block, deriv);

    const double h = 1e-6;
    for (int g = 0; g < 3; ++g) {
      Vec3 dp = d, dm = d;
      if (g == 0) {
        dp.x += h;
        dm.x -= h;
      } else if (g == 1) {
        dp.y += h;
        dm.y -= h;
      } else {
        dp.z += h;
        dm.z -= h;
      }
      const SkBlock bp = sk_block(m, dp);
      const SkBlock bm = sk_block(m, dm);
      for (int a = 0; a < 4; ++a) {
        for (int c = 0; c < 4; ++c) {
          const double fd = (bp.h[a][c] - bm.h[a][c]) / (2.0 * h);
          EXPECT_NEAR(deriv.d[g][a][c], fd, 2e-5)
              << m.name << " g=" << g << " a=" << a << " c=" << c;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkDerivative, ::testing::Range(100, 112));

TEST(SkDerivative, ConsistentWithValueOnlyPath) {
  const TbModel m = xwch_carbon();
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 d = random_unit(rng) * rng.uniform(1.0, 2.5);
    SkBlock b1;
    SkBlockDerivative deriv;
    sk_block_with_derivative(m, d, b1, deriv);
    const SkBlock b2 = sk_block(m, d);
    for (int a = 0; a < 4; ++a) {
      for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(b1.h[a][c], b2.h[a][c]);
    }
  }
}

}  // namespace
}  // namespace tbmd::tb
