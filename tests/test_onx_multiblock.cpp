// Tests for the O(N) layer on mixed orbital blocks (bs in {1, 4, 9}):
// sparse/blocked Hamiltonian assembly against the dense reference on a
// multi-species system, the Hellmann-Feynman contraction over mixed tiles,
// and the grand-canonical purification path (fixed-mu McWeeny + the
// chemical-potential bisection).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/linalg/eigen_sym.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/onx/purification.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/density_matrix.hpp"
#include "src/tb/forces.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/tb/radial.hpp"
#include "src/tb/tb_model.hpp"

namespace tbmd::onx {
namespace {

tb::RadialScaling test_scaling() {
  tb::RadialScaling sc;
  sc.r0 = 2.0;
  sc.n = 2.0;
  sc.nc = 6.0;
  sc.rc = 3.0;
  sc.r_taper = 3.2;
  sc.r_cut = 3.6;
  return sc;
}

/// Three-species model (H: s-only, C: sp, Au: spd) with every integral a
/// pair can carry populated -- the mixed-tile stress case.
tb::TbModel toy_multi_model() {
  tb::TbModel m;
  m.name = "toy-multi";
  m.repulsion_kind = tb::RepulsionKind::kPairSum;
  tb::SpeciesParams a{tbmd::Element::H, 1, -3.0, 0.0, 0.0};
  tb::SpeciesParams b{tbmd::Element::C, 4, -2.5, 3.5, 0.0};
  tb::SpeciesParams c{tbmd::Element::Au, 9, -4.5, 1.3, -7.5};
  m.set_species({a, b, c});

  tb::PairParams ab;
  ab.integrals.sss = -1.1;
  ab.integrals.sps = 1.6;
  ab.hopping = test_scaling();
  ab.phi0 = 1.0;
  ab.repulsive = test_scaling();
  m.set_pair(0, 1, ab);

  tb::PairParams bc;
  bc.integrals.sss = -0.9;
  bc.integrals.sps = 1.2;
  bc.integrals.pss = -1.4;
  bc.integrals.pps = 2.1;
  bc.integrals.ppp = -0.5;
  bc.integrals.sds = -0.8;
  bc.integrals.pds = -1.0;
  bc.integrals.pdp = 0.4;
  bc.hopping = test_scaling();
  bc.phi0 = 1.0;
  bc.repulsive = test_scaling();
  m.set_pair(1, 2, bc);

  tb::PairParams cc;
  cc.integrals.sss = -0.7;
  cc.integrals.sps = 1.1;
  cc.integrals.pps = 1.9;
  cc.integrals.ppp = -0.3;
  cc.integrals.sds = -0.6;
  cc.integrals.pds = -0.9;
  cc.integrals.pdp = 0.3;
  cc.integrals.dds = -0.55;
  cc.integrals.ddp = 0.35;
  cc.integrals.ddd = -0.08;
  cc.hopping = test_scaling();
  cc.phi0 = 1.0;
  cc.repulsive = test_scaling();
  m.set_pair(2, 2, cc);

  tb::PairParams aa = ab;
  aa.integrals = {};
  aa.integrals.sss = -1.3;
  m.set_pair(0, 0, aa);
  tb::PairParams bb = ab;
  bb.integrals = {};
  bb.integrals.sss = -1.0;
  bb.integrals.sps = 1.5;
  bb.integrals.pps = 2.0;
  bb.integrals.ppp = -0.4;
  m.set_pair(1, 1, bb);
  tb::PairParams ac = ab;
  ac.integrals = {};
  ac.integrals.sss = -0.8;
  ac.integrals.sds = -0.5;
  m.set_pair(0, 2, ac);
  return m;
}

/// Simple-cubic mixed crystal: 27 sites at 2.7 A spacing (cell 8.1 A, large
/// enough for the 3.6 A test cutoff plus skin), species cycling H / C / Au
/// so every pair kind (1x1 ... 9x9) occurs within range.
System mixed_crystal() {
  const double a = 2.7;
  System s(Cell::cubic(3 * a));
  const tbmd::Element kinds[3] = {tbmd::Element::H, tbmd::Element::C,
                                  tbmd::Element::Au};
  int k = 0;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      for (int z = 0; z < 3; ++z, ++k) {
        s.add_atom(kinds[k % 3], {a * x, a * y, a * z});
      }
    }
  }
  structures::perturb(s, 0.05, 23);
  return s;
}

TEST(MixedBlocks, SparseHamiltonianMatchesDense) {
  const tb::TbModel m = toy_multi_model();
  const System s = mixed_crystal();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});

  const linalg::Matrix hd = tb::build_hamiltonian(m, s, list);
  const SparseMatrix hs = build_sparse_hamiltonian(m, s, list);
  ASSERT_EQ(hs.size(), hd.rows());
  ASSERT_EQ(hs.size(), tb::orbital_count(m, s));
  for (std::size_t i = 0; i < hs.size(); ++i) {
    for (std::size_t j = 0; j < hs.size(); ++j) {
      EXPECT_NEAR(hs.get(i, j), hd(i, j), 1e-13) << i << "," << j;
    }
  }
}

TEST(MixedBlocks, BlockHamiltonianMatchesDense) {
  const tb::TbModel m = toy_multi_model();
  const System s = mixed_crystal();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);

  const linalg::Matrix hd = tb::build_hamiltonian(m, s, list);
  const BlockSparseMatrix hb = build_block_hamiltonian(m, s, table);
  EXPECT_TRUE(hb.symmetric());
  EXPECT_FALSE(hb.uniform_blocks());
  EXPECT_EQ(hb.block_rows(), s.size());
  ASSERT_EQ(hb.size(), hd.rows());
  const linalg::Matrix back = hb.to_full().to_dense();
  for (std::size_t i = 0; i < hb.size(); ++i) {
    for (std::size_t j = 0; j < hb.size(); ++j) {
      EXPECT_NEAR(back(i, j), hd(i, j), 1e-13) << i << "," << j;
    }
  }
}

TEST(MixedBlocks, BandForcesSparseMatchesDenseContraction) {
  const tb::TbModel m = toy_multi_model();
  const System s = mixed_crystal();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocksAndDerivatives);

  // Spin-summed density from exact diagonalization (T = 0); the sparse
  // overloads take the spinless P = rho / 2.
  const linalg::Matrix hd = tb::build_hamiltonian(m, s, list);
  const auto eig = linalg::eigh(hd);
  const auto occ = tb::occupy(eig.values, s.total_valence_electrons(), 0.0);
  const linalg::Matrix rho = tb::density_matrix(eig.vectors, occ.weights);

  Mat3 w_dense{};
  const std::vector<Vec3> f_dense = tb::band_forces(table, rho, &w_dense);

  const SparseMatrix p_csr = SparseMatrix::from_dense(rho * 0.5);
  Mat3 w_csr{};
  const std::vector<Vec3> f_csr = band_forces_sparse(table, p_csr, &w_csr);

  const std::vector<std::uint32_t> dims = tb::orbital_block_dims(m, s);
  const BlockSparseMatrix p_bsr = p_csr.to_block(dims).to_symmetric_half();
  Mat3 w_bsr{};
  const std::vector<Vec3> f_bsr = band_forces_sparse(table, p_bsr, &w_bsr);

  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_LT(norm(f_csr[i] - f_dense[i]), 1e-10) << "atom " << i;
    EXPECT_LT(norm(f_bsr[i] - f_dense[i]), 1e-10) << "atom " << i;
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(w_csr(r, c), w_dense(r, c), 1e-9);
      EXPECT_NEAR(w_bsr(r, c), w_dense(r, c), 1e-9);
    }
  }
}

TEST(MixedBlocks, PurificationRunsOnVariableLayout) {
  // The PM loop must accept a variable-block operand end to end (the toy
  // metalloid spectrum need not be gapped, so only the mechanics -- layout
  // preservation, trace targeting -- are asserted, not convergence).
  const tb::TbModel m = toy_multi_model();
  const System s = mixed_crystal();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);
  const BlockSparseMatrix hb = build_block_hamiltonian(m, s, table);

  PurificationOptions opt;
  opt.drop_tolerance = 0.0;
  opt.max_iterations = 60;
  const int nocc = s.total_valence_electrons() / 2;
  const PurificationResult r = palser_manolopoulos(hb, nocc, opt);
  EXPECT_FALSE(r.density.uniform_blocks());
  EXPECT_EQ(r.density.size(), hb.size());
  EXPECT_NEAR(r.density.trace(), static_cast<double>(nocc), 1e-6);
}

TEST(GrandCanonical, FixedMuCountsStatesBelowMu) {
  // Gapped reference system: 64-atom diamond carbon.  With mu inside the
  // gap the McWeeny projection must converge to the aufbau density.
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const linalg::Matrix hd = tb::build_hamiltonian(m, s, list);
  const auto eig = linalg::eigh(hd);
  const int nocc = s.total_valence_electrons() / 2;
  const double homo = eig.values[nocc - 1];
  const double lumo = eig.values[nocc];
  ASSERT_GT(lumo - homo, 0.5);  // diamond gap

  const SparseMatrix hs = SparseMatrix::from_dense(hd);
  const BlockSparseMatrix hb =
      hs.to_block(tb::orbital_block_dims(m, s)).to_symmetric_half();

  PurificationOptions opt;
  opt.drop_tolerance = 0.0;
  const double mu = 0.5 * (homo + lumo);
  const PurificationResult r = purify_grand_canonical(hb, mu, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.mu, mu);
  EXPECT_NEAR(r.density.trace(), static_cast<double>(nocc), 1e-5);

  const auto occ = tb::occupy(eig.values, s.total_valence_electrons(), 0.0);
  EXPECT_NEAR(r.band_energy, occ.band_energy, 1e-4);
}

TEST(GrandCanonical, ChemicalPotentialSearchFindsTheGap) {
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const linalg::Matrix hd = tb::build_hamiltonian(m, s, list);
  const auto eig = linalg::eigh(hd);
  const int nocc = s.total_valence_electrons() / 2;

  const SparseMatrix hs = SparseMatrix::from_dense(hd);
  const BlockSparseMatrix hb =
      hs.to_block(tb::orbital_block_dims(m, s)).to_symmetric_half();

  PurificationOptions opt;
  opt.drop_tolerance = 0.0;
  PurificationWorkspace ws;
  const PurificationResult r =
      purify_with_chemical_potential(hb, nocc, opt, &ws);
  ASSERT_TRUE(r.converged);
  // The located Fermi level must separate HOMO and LUMO...
  EXPECT_GT(r.mu, eig.values[nocc - 1]);
  EXPECT_LT(r.mu, eig.values[nocc]);
  // ... and the run at that mu reproduces the canonical result.
  EXPECT_NEAR(r.density.trace(), static_cast<double>(nocc), 0.25);
  const auto occ = tb::occupy(eig.values, s.total_valence_electrons(), 0.0);
  EXPECT_NEAR(r.band_energy, occ.band_energy, 1e-3);
}

TEST(GrandCanonical, ChemicalPotentialSearchUnderMixedPrecision) {
  // The mu-bisection drives purification runs whose loose-early
  // iterations live on fp32 tiles: the located Fermi level must still
  // land in the gap and the band energy must stay inside the force-
  // accuracy budget, with the density handed back as an fp64 artifact.
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);  // C64
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const linalg::Matrix hd = tb::build_hamiltonian(m, s, list);
  const auto eig = linalg::eigh(hd);
  const int nocc = s.total_valence_electrons() / 2;

  const SparseMatrix hs = SparseMatrix::from_dense(hd);
  const BlockSparseMatrix hb =
      hs.to_block(tb::orbital_block_dims(m, s)).to_symmetric_half();

  PurificationOptions opt;
  opt.drop_tolerance = 1e-7;
  opt.precision = PrecisionMode::kMixed;
  PurificationWorkspace ws;
  const PurificationResult r =
      purify_with_chemical_potential(hb, nocc, opt, &ws);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.mu, eig.values[nocc - 1]);
  EXPECT_LT(r.mu, eig.values[nocc]);
  EXPECT_NEAR(r.density.trace(), static_cast<double>(nocc), 0.25);
  const auto occ = tb::occupy(eig.values, s.total_valence_electrons(), 0.0);
  EXPECT_NEAR(r.band_energy, occ.band_energy, 2e-3);

  // The winning run spent iterations on fp32 tiles, and promotion always
  // happened before convergence was declared (fp64 density out).
  EXPECT_GT(r.numerics.fp32_iterations, 0);
  EXPECT_EQ(r.density.precision(), TilePrecision::kF64);
}

}  // namespace
}  // namespace tbmd::onx
