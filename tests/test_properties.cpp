// Cross-module property tests: physical invariances that must hold for
// any correct implementation, independent of parameter values.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/potentials/lennard_jones.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/random.hpp"

namespace tbmd {
namespace {

Vec3 rotate(const Vec3& v, const Vec3& axis, double angle) {
  return v * std::cos(angle) + cross(axis, v) * std::sin(angle) +
         axis * dot(axis, v) * (1.0 - std::cos(angle));
}

TEST(Invariance, TbEnergyIsNearlyExtensive) {
  // Gamma-point sampling makes the band energy per atom depend weakly on
  // the supercell shape (different folded k-sets); doubling the cell may
  // shift it by a few meV/atom, converging to zero as cells grow.  The
  // repulsive term is strictly local, so the residual must be small.
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  System small = structures::diamond(Element::C, 3.567, 2, 2, 2);
  System large = structures::diamond(Element::C, 3.567, 2, 2, 4);
  const ForceResult rs = calc.compute(small);
  const ForceResult rl = calc.compute(large);
  EXPECT_NEAR(rs.energy / small.size(), rl.energy / large.size(), 0.02);
  // The classical repulsion is exactly extensive.
  EXPECT_NEAR(rs.repulsive_energy / small.size(),
              rl.repulsive_energy / large.size(), 1e-9);
}

TEST(Invariance, TbEnergyIndependentOfVerletSkin) {
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  structures::perturb(s, 0.05, 3);
  double reference = 0.0;
  for (const double skin : {0.0, 0.3, 0.8}) {
    tb::TbOptions opt;
    opt.skin = skin;
    tb::TightBindingCalculator calc(tb::gsp_silicon(), opt);
    const double e = calc.compute(s).energy;
    if (skin == 0.0) {
      reference = e;
    } else {
      EXPECT_NEAR(e, reference, 1e-9) << "skin " << skin;
    }
  }
}

TEST(Invariance, TbEnergyUnchangedByPositionWrapping) {
  // Moving atoms by lattice vectors must not change anything.
  System a = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(a, 0.04, 5);
  System b = a;
  Rng rng(7);
  for (std::size_t i = 0; i < b.size(); ++i) {
    const int n1 = static_cast<int>(rng.below(3)) - 1;
    const int n2 = static_cast<int>(rng.below(3)) - 1;
    const int n3 = static_cast<int>(rng.below(3)) - 1;
    b.positions()[i] += b.cell().shift_vector(n1, n2, n3);
  }
  tb::TightBindingCalculator ca(tb::xwch_carbon());
  tb::TightBindingCalculator cb(tb::xwch_carbon());
  const ForceResult ra = ca.compute(a);
  const ForceResult rb = cb.compute(b);
  EXPECT_NEAR(ra.energy, rb.energy, 1e-8);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(norm(ra.forces[i] - rb.forces[i]), 0.0, 1e-8);
  }
}

TEST(Invariance, TbForcesRotateWithTheCluster) {
  System a = structures::c60();
  structures::perturb(a, 0.05, 9);
  const Vec3 axis = normalized(Vec3{1.0, -2.0, 0.5});
  const double angle = 0.83;

  System b = a;
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.positions()[i] = rotate(a.positions()[i], axis, angle);
  }
  tb::TightBindingCalculator ca(tb::xwch_carbon());
  tb::TightBindingCalculator cb(tb::xwch_carbon());
  const ForceResult ra = ca.compute(a);
  const ForceResult rb = cb.compute(b);
  EXPECT_NEAR(ra.energy, rb.energy, 1e-8);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Vec3 expected = rotate(ra.forces[i], axis, angle);
    EXPECT_NEAR(norm(expected - rb.forces[i]), 0.0, 2e-7) << "atom " << i;
  }
}

TEST(Invariance, TbEnergyInvariantUnderAtomPermutation) {
  System a = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  structures::perturb(a, 0.06, 11);

  // Reversed atom order.
  System b(a.cell());
  for (std::size_t i = a.size(); i-- > 0;) {
    b.add_atom(a.species()[i], a.positions()[i]);
  }
  tb::TightBindingCalculator ca(tb::gsp_silicon());
  tb::TightBindingCalculator cb(tb::gsp_silicon());
  const ForceResult ra = ca.compute(a);
  const ForceResult rb = cb.compute(b);
  EXPECT_NEAR(ra.energy, rb.energy, 1e-8);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(norm(ra.forces[i] - rb.forces[a.size() - 1 - i]), 0.0, 1e-8);
  }
}

TEST(Invariance, TersoffForcesRotateWithTheCluster) {
  System a = structures::c60();
  structures::perturb(a, 0.04, 13);
  const Vec3 axis = normalized(Vec3{0.3, 0.4, -1.0});
  const double angle = 1.27;
  System b = a;
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.positions()[i] = rotate(a.positions()[i], axis, angle);
  }
  potentials::TersoffCalculator ca(potentials::tersoff_carbon());
  potentials::TersoffCalculator cb(potentials::tersoff_carbon());
  const ForceResult ra = ca.compute(a);
  const ForceResult rb = cb.compute(b);
  EXPECT_NEAR(ra.energy, rb.energy, 1e-9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Vec3 expected = rotate(ra.forces[i], axis, angle);
    EXPECT_NEAR(norm(expected - rb.forces[i]), 0.0, 1e-8);
  }
}

TEST(Dynamics, VelocityVerletIsTimeReversible) {
  // Integrate forward, flip velocities, integrate the same number of
  // steps: the system must retrace its path to the starting point.
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s, 60.0, 17);
  const std::vector<Vec3> start = s.positions();

  potentials::LennardJonesParams p;
  p.cutoff = 4.8;
  p.skin = 0.0;  // keep the force field exactly deterministic in r
  potentials::LennardJonesCalculator calc(p);
  md::MdDriver driver(s, calc, {2.0});
  driver.run(50);
  for (Vec3& v : s.velocities()) v = -v;
  driver.run(50);

  double worst = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    worst = std::max(worst, norm(s.positions()[i] - start[i]));
  }
  EXPECT_LT(worst, 1e-8);
}

TEST(Dynamics, NveConservesLinearMomentum) {
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s, 400.0, 19);
  tb::TightBindingCalculator calc(tb::gsp_silicon());
  md::MdDriver driver(s, calc, {1.0});
  driver.run(25);
  Vec3 total{};
  for (std::size_t i = 0; i < s.size(); ++i) {
    total += s.mass(i) * s.velocities()[i];
  }
  EXPECT_NEAR(norm(total), 0.0, 1e-8);
}

TEST(Dynamics, DeterministicGivenSeed) {
  auto run_once = [] {
    System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
    md::maxwell_boltzmann_velocities(s, 500.0, 23);
    tb::TightBindingCalculator calc(tb::xwch_carbon());
    md::MdDriver driver(s, calc, {1.0});
    driver.run(10);
    return s.positions();
  };
  const auto a = run_once();
  const auto b = run_once();
  // Threaded force reductions accumulate in thread-arrival order, so
  // bitwise identity is not guaranteed; trajectories must still agree to
  // floating-point noise over this short horizon.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(norm(a[i] - b[i]), 0.0, 1e-9);
  }
}

TEST(Invariance, VirialTraceMatchesIsotropicScalingForce) {
  // tr W = -3V dE/dV; consistency between the virial accumulation and a
  // direct isotropic strain derivative for the Tersoff potential.
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  potentials::TersoffParams p = potentials::tersoff_silicon();
  p.skin = 0.0;
  potentials::TersoffCalculator calc(p);
  const ForceResult r = calc.compute(s);

  const double eps = 1e-4;
  auto energy_scaled = [&](double f) {
    System c = s;
    const Mat3& h = s.cell().h();
    c.set_cell(Cell(h.row(0) * f, h.row(1) * f, h.row(2) * f));
    for (Vec3& q : c.positions()) q *= f;
    potentials::TersoffCalculator cc(p);
    return cc.compute(c).energy;
  };
  const double dE_dlnf =
      (energy_scaled(1.0 + eps) - energy_scaled(1.0 - eps)) / (2.0 * eps);
  EXPECT_NEAR(trace(r.virial), -dE_dlnf, 1e-4 * std::max(1.0, std::fabs(dE_dlnf)));
}

}  // namespace
}  // namespace tbmd
