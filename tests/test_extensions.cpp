// Tests for the extension features: SP2 purification, the Gear
// predictor-corrector integrator, configuration parsing and restart I/O.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/io/config.hpp"
#include "src/io/xyz.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/md/gear.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/onx/sp2.hpp"
#include "src/potentials/lennard_jones.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"

namespace tbmd {
namespace {

// --- SP2 purification ----------------------------------------------------

TEST(Sp2, MatchesExactBandEnergyOnGappedSystem) {
  const tb::TbModel m = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const auto hd = tb::build_hamiltonian(m, s, list);
  const auto occ = tb::occupy(linalg::eigvalsh(hd),
                              s.total_valence_electrons(), 0.0);

  onx::PurificationOptions opt;
  opt.drop_tolerance = 0.0;
  const auto sp2 = onx::sp2_purification(onx::SparseMatrix::from_dense(hd),
                                         s.total_valence_electrons() / 2, opt);
  ASSERT_TRUE(sp2.converged);
  EXPECT_NEAR(sp2.band_energy, occ.band_energy, 1e-5);
  EXPECT_NEAR(sp2.density.trace(),
              static_cast<double>(s.total_valence_electrons() / 2), 1e-5);
}

TEST(Sp2, AgreesWithPalserManolopoulos) {
  const tb::TbModel m = tb::gsp_silicon();
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const auto h = onx::build_sparse_hamiltonian(m, s, list);
  const int nocc = s.total_valence_electrons() / 2;

  onx::PurificationOptions opt;
  opt.drop_tolerance = 1e-8;
  const auto pm = onx::palser_manolopoulos(h, nocc, opt);
  const auto sp2 = onx::sp2_purification(h, nocc, opt);
  ASSERT_TRUE(pm.converged);
  ASSERT_TRUE(sp2.converged);
  EXPECT_NEAR(pm.band_energy, sp2.band_energy, 1e-4);
}

TEST(Sp2, TrivialCases) {
  const onx::SparseMatrix h = onx::SparseMatrix::identity(4);
  const auto none = onx::sp2_purification(h, 0, {});
  EXPECT_TRUE(none.converged);
  EXPECT_DOUBLE_EQ(none.band_energy, 0.0);
  EXPECT_THROW((void)onx::sp2_purification(h, 9, {}), Error);
}

// --- Gear predictor-corrector -------------------------------------------

TEST(Gear, ConservesEnergyOnLennardJonesCrystal) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s, 40.0, 5);
  potentials::LennardJonesParams p;
  p.cutoff = 4.8;
  p.skin = 0.4;
  potentials::LennardJonesCalculator calc(p);
  md::GearDriver driver(s, calc, 1.0);
  const double e0 = driver.total_energy();
  driver.run(400);
  EXPECT_NEAR(driver.total_energy(), e0, 5e-4 * s.size());
}

TEST(Gear, TracksVerletTrajectoryAtSmallTimestep) {
  // Both integrators converge to the true trajectory as dt -> 0; at a
  // small dt their short-time trajectories must agree closely.
  System s1 = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s1, 30.0, 7);
  System s2 = s1;

  potentials::LennardJonesParams p;
  p.cutoff = 4.8;
  p.skin = 0.4;
  potentials::LennardJonesCalculator c1(p), c2(p);
  md::GearDriver gear(s1, c1, 0.5);
  md::MdDriver verlet(s2, c2, {0.5});
  gear.run(100);
  verlet.run(100);

  double worst = 0.0;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    worst = std::max(worst, norm(s1.positions()[i] - s2.positions()[i]));
  }
  EXPECT_LT(worst, 1e-3);
}

TEST(Gear, FrozenAtomsStayPut) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  s.set_frozen(0, true);
  const Vec3 pinned = s.positions()[0];
  md::maxwell_boltzmann_velocities(s, 50.0, 9);
  potentials::LennardJonesParams p;
  p.cutoff = 4.8;
  p.skin = 0.4;
  potentials::LennardJonesCalculator calc(p);
  md::GearDriver driver(s, calc, 1.0);
  driver.run(40);
  EXPECT_EQ(s.positions()[0], pinned);
}

TEST(Gear, RejectsBadTimestep) {
  System s = structures::dimer(Element::Ar, 3.8);
  potentials::LennardJonesCalculator calc;
  EXPECT_THROW(md::GearDriver(s, calc, 0.0), Error);
}

// --- Config --------------------------------------------------------------

TEST(Config, ParsesTypedValues) {
  const auto cfg = io::Config::parse_string(R"(
    # a comment
    model = tb-exact
    steps = 250
    dt    = 0.5       # trailing comment
    relax = yes
    cells = 2 3 4
    masses = 1.5 2.5
  )");
  EXPECT_EQ(cfg.require_string("model"), "tb-exact");
  EXPECT_EQ(cfg.get_long("steps", 0), 250);
  EXPECT_DOUBLE_EQ(cfg.get_double("dt", 0.0), 0.5);
  EXPECT_TRUE(cfg.get_bool("relax", false));
  const auto cells = cfg.get_longs("cells", {});
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[2], 4);
  const auto masses = cfg.get_doubles("masses", {});
  ASSERT_EQ(masses.size(), 2u);
  EXPECT_DOUBLE_EQ(masses[1], 2.5);
}

TEST(Config, KeysAreCaseInsensitive) {
  const auto cfg = io::Config::parse_string("Temperature = 300\n");
  EXPECT_TRUE(cfg.has("temperature"));
  EXPECT_TRUE(cfg.has("TEMPERATURE"));
  EXPECT_DOUBLE_EQ(cfg.get_double("temperature", 0.0), 300.0);
}

TEST(Config, DefaultsAndRequired) {
  const auto cfg = io::Config::parse_string("a = 1\n");
  EXPECT_EQ(cfg.get_long("missing", 7), 7);
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
  EXPECT_THROW((void)cfg.require_string("missing"), Error);
}

TEST(Config, SyntaxErrorsAreReportedWithLineNumbers) {
  EXPECT_THROW((void)io::Config::parse_string("novalue\n"), Error);
  EXPECT_THROW((void)io::Config::parse_string("= 3\n"), Error);
  EXPECT_THROW((void)io::Config::parse_string("a = 1\na = 2\n"), Error);
  try {
    (void)io::Config::parse_string("ok = 1\nbroken line\n");
    FAIL();
  } catch (const Error& e) {
    // Errors carry "source:line" prefixes (e.g. "<config>:2: ...").
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos);
  }
}

TEST(Config, BadTypedValuesThrow) {
  const auto cfg = io::Config::parse_string("x = abc\nb = maybe\n");
  EXPECT_THROW((void)cfg.get_double("x", 0.0), Error);
  EXPECT_THROW((void)cfg.get_long("x", 0), Error);
  EXPECT_THROW((void)cfg.get_bool("b", false), Error);
}

TEST(Config, TypedRequireAccessors) {
  const auto cfg = io::Config::parse_string(
      "n = 5\nx = 2.5\nflag = true\nv = 1.0 2.0 3.0\nname = melt\n");
  EXPECT_EQ(cfg.require_long("n"), 5);
  EXPECT_EQ(cfg.require_double("x"), 2.5);
  EXPECT_TRUE(cfg.require_bool("flag"));
  EXPECT_EQ(cfg.require_string("name"), "melt");
  EXPECT_EQ(cfg.require_doubles("v", 3), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_THROW((void)cfg.require_doubles("v", 2), Error);  // wrong count
  EXPECT_THROW((void)cfg.require_long("x"), Error);        // wrong type
  EXPECT_THROW((void)cfg.require_long("absent"), Error);   // missing
}

TEST(Config, ErrorsCarryFileAndLine) {
  const auto cfg =
      io::Config::parse_string("a = 1\nb = oops\n", "demo.cfg");
  EXPECT_EQ(cfg.where("b"), "demo.cfg:2");
  EXPECT_EQ(cfg.line("a"), 1);
  EXPECT_EQ(cfg.line("absent"), 0);
  try {
    (void)cfg.require_long("b");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("demo.cfg:2"), std::string::npos);
  }
}

TEST(Config, UnusedKeysAreTracked) {
  const auto cfg = io::Config::parse_string("a = 1\ntypo = 2\n");
  (void)cfg.get_long("a", 0);
  EXPECT_EQ(cfg.unused_keys(), (std::vector<std::string>{"typo"}));
  try {
    cfg.require_all_used("test config");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("typo"), std::string::npos);
  }
  (void)cfg.get_long("typo", 0);
  EXPECT_TRUE(cfg.unused_keys().empty());
  cfg.require_all_used("test config");  // no longer throws
}

// --- restart I/O (velocities in XYZ) --------------------------------------

TEST(RestartXyz, VelocitiesRoundTrip) {
  System a = structures::diamond(Element::Si, 5.431, 1, 1, 2);
  md::maxwell_boltzmann_velocities(a, 300.0, 11);
  std::stringstream ss;
  io::write_xyz(ss, a, "restart", /*with_velocities=*/true);

  System b;
  ASSERT_TRUE(io::read_xyz(ss, b));
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(norm(b.velocities()[i] - a.velocities()[i]), 0.0, 1e-9);
  }
  EXPECT_NEAR(b.temperature(), a.temperature(), 1e-6);
}

TEST(RestartXyz, PlainFilesReadBackWithZeroVelocities) {
  System a = structures::dimer(Element::C, 1.4);
  a.velocities()[0] = {1, 2, 3};
  std::stringstream ss;
  io::write_xyz(ss, a, "", /*with_velocities=*/false);
  System b;
  ASSERT_TRUE(io::read_xyz(ss, b));
  EXPECT_EQ(b.velocities()[0], (Vec3{0, 0, 0}));
}

TEST(RestartXyz, RestartContinuesTrajectoryExactly) {
  // Running 20 steps straight must equal 10 steps + restart + 10 steps
  // when the full state (positions + velocities) round-trips.
  System s1 = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s1, 60.0, 13);
  System s2 = s1;

  potentials::LennardJonesParams p;
  p.cutoff = 4.8;
  p.skin = 0.4;

  potentials::LennardJonesCalculator c1(p);
  md::MdDriver d1(s1, c1, {2.0});
  d1.run(20);

  potentials::LennardJonesCalculator c2(p);
  md::MdDriver d2(s2, c2, {2.0});
  d2.run(10);
  std::stringstream ss;
  io::write_xyz(ss, s2, "half", true);
  System resumed;
  ASSERT_TRUE(io::read_xyz(ss, resumed));
  potentials::LennardJonesCalculator c3(p);
  md::MdDriver d3(resumed, c3, {2.0});
  d3.run(10);

  double worst = 0.0;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    worst = std::max(worst, norm(s1.positions()[i] - resumed.positions()[i]));
  }
  EXPECT_LT(worst, 1e-7);
}

}  // namespace
}  // namespace tbmd
