// Tests for the k-space layer: complex Hermitian eigensolver, Bloch
// Hamiltonians, band folding, Dirac point of graphene, silicon band gap.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/linalg/eigen_sym.hpp"
#include "src/linalg/hermitian.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/bloch.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/util/random.hpp"

namespace tbmd::tb {
namespace {

// --- Hermitian eigensolver ----------------------------------------------

linalg::Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1, 1);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

linalg::Matrix random_antisymmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double v = rng.uniform(-1, 1);
      m(i, j) = v;
      m(j, i) = -v;
    }
  }
  return m;
}

TEST(HermitianEig, RealMatrixReducesToSymmetricSolver) {
  const auto a = random_symmetric(12, 3);
  const linalg::Matrix b(12, 12, 0.0);
  const auto herm = linalg::eigvalsh_hermitian(a, b);
  const auto real = linalg::eigvalsh(a);
  ASSERT_EQ(herm.size(), real.size());
  for (std::size_t k = 0; k < herm.size(); ++k) {
    EXPECT_NEAR(herm[k], real[k], 1e-10);
  }
}

TEST(HermitianEig, TwoByTwoAnalytic) {
  // H = [[1, i], [-i, 1]] has eigenvalues 0 and 2.
  linalg::Matrix a = linalg::Matrix::identity(2);
  linalg::Matrix b(2, 2, 0.0);
  b(0, 1) = 1.0;
  b(1, 0) = -1.0;
  const auto vals = linalg::eigvalsh_hermitian(a, b);
  EXPECT_NEAR(vals[0], 0.0, 1e-12);
  EXPECT_NEAR(vals[1], 2.0, 1e-12);
}

class HermitianRandom : public ::testing::TestWithParam<int> {};

TEST_P(HermitianRandom, SatisfiesEigenEquation) {
  const int n = GetParam();
  const auto a = random_symmetric(n, 100 + n);
  const auto b = random_antisymmetric(n, 200 + n);
  const auto sol = linalg::eigh_hermitian(a, b);

  ASSERT_EQ(sol.values.size(), static_cast<std::size_t>(n));
  // Residual of (A + iB)(x + iy) = lambda (x + iy), split into parts:
  //   A x - B y = lambda x     and     A y + B x = lambda y.
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      double re = 0.0, im = 0.0;
      for (int j = 0; j < n; ++j) {
        re += a(i, j) * sol.vectors_real(j, k) - b(i, j) * sol.vectors_imag(j, k);
        im += a(i, j) * sol.vectors_imag(j, k) + b(i, j) * sol.vectors_real(j, k);
      }
      EXPECT_NEAR(re, sol.values[k] * sol.vectors_real(i, k), 1e-9);
      EXPECT_NEAR(im, sol.values[k] * sol.vectors_imag(i, k), 1e-9);
    }
  }
  // Values ascending.
  for (int k = 1; k < n; ++k) EXPECT_LE(sol.values[k - 1], sol.values[k]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HermitianRandom, ::testing::Values(2, 5, 9, 16));

TEST(HermitianEig, RejectsNonHermitianInput) {
  linalg::Matrix a(3, 3, 0.0);
  a(0, 1) = 1.0;  // not symmetric
  linalg::Matrix b(3, 3, 0.0);
  EXPECT_THROW((void)linalg::eigvalsh_hermitian(a, b), Error);

  linalg::Matrix a2 = linalg::Matrix::identity(3);
  linalg::Matrix b2(3, 3, 0.0);
  b2(0, 1) = 1.0;  // not antisymmetric (b2(1,0) == 0)
  EXPECT_THROW((void)linalg::eigvalsh_hermitian(a2, b2), Error);
}

// --- Bloch Hamiltonian ---------------------------------------------------

TEST(Bloch, GammaPointMatchesRealSpaceSupercell) {
  // For a supercell large enough for the minimum-image convention, H(k=0)
  // must equal the real-space Hamiltonian.
  const TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.02, 5);

  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.0});
  const auto real_h = build_hamiltonian(m, s, list);
  const auto real_vals = linalg::eigvalsh(real_h);

  const auto bloch_vals = bloch_eigenvalues(m, s, {0, 0, 0});
  ASSERT_EQ(bloch_vals.size(), real_vals.size());
  for (std::size_t k = 0; k < real_vals.size(); ++k) {
    EXPECT_NEAR(bloch_vals[k], real_vals[k], 1e-8);
  }
}

TEST(Bloch, BandFoldingIdentity) {
  // The spectrum of an L x 1 x 1 supercell at Gamma equals the union of the
  // primitive-cell spectra at the L commensurate k-points -- the band
  // folding theorem, a stringent end-to-end check of phases and images.
  const TbModel m = gsp_silicon();
  const double a = 5.431;
  System primitive = structures::diamond(Element::Si, a, 1, 1, 1);
  System super = structures::diamond(Element::Si, a, 2, 1, 1);

  std::vector<double> folded;
  for (int q = 0; q < 2; ++q) {
    const Vec3 k = fractional_to_k(primitive.cell(),
                                   {static_cast<double>(q) / 2.0, 0, 0});
    const auto eps = bloch_eigenvalues(m, primitive, k);
    folded.insert(folded.end(), eps.begin(), eps.end());
  }
  std::sort(folded.begin(), folded.end());

  const auto super_gamma = bloch_eigenvalues(m, super, {0, 0, 0});
  ASSERT_EQ(super_gamma.size(), folded.size());
  for (std::size_t k = 0; k < folded.size(); ++k) {
    EXPECT_NEAR(super_gamma[k], folded[k], 1e-8) << "state " << k;
  }
}

TEST(Bloch, SpectrumIsEvenInK) {
  // Time-reversal symmetry: eps(-k) = eps(k).
  const TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 1, 1, 1);
  const Vec3 k = fractional_to_k(s.cell(), {0.21, 0.37, -0.11});
  const auto plus = bloch_eigenvalues(m, s, k);
  const auto minus = bloch_eigenvalues(m, s, -k);
  for (std::size_t q = 0; q < plus.size(); ++q) {
    EXPECT_NEAR(plus[q], minus[q], 1e-9);
  }
}

TEST(Bloch, ReciprocalLatticePeriodicity) {
  // eps(k + G) = eps(k) in the atomic gauge for lattice-commensurate G.
  const TbModel m = gsp_silicon();
  System s = structures::diamond(Element::Si, 5.431, 1, 1, 1);
  const Vec3 kf{0.13, 0.27, 0.41};
  const auto base = bloch_eigenvalues(m, s, fractional_to_k(s.cell(), kf));
  const auto shifted = bloch_eigenvalues(
      m, s, fractional_to_k(s.cell(), kf + Vec3{1.0, 0.0, -1.0}));
  for (std::size_t q = 0; q < base.size(); ++q) {
    EXPECT_NEAR(base[q], shifted[q], 1e-8);
  }
}

TEST(Bloch, GrapheneDiracPointAtK) {
  // Rectangular 4-atom graphene cell: the Dirac point folds onto
  // fractional (1/3, 0).  The pi gap must close there and be open at Gamma.
  const TbModel m = xwch_carbon();
  System g = structures::graphene(Element::C, 1.42, 1, 1);
  const int ne = g.total_valence_electrons();
  const std::size_t homo = ne / 2 - 1;

  const auto at_k = bloch_eigenvalues(
      m, g, fractional_to_k(g.cell(), {1.0 / 3.0, 0.0, 0.0}));
  const double gap_k = at_k[homo + 1] - at_k[homo];
  EXPECT_NEAR(gap_k, 0.0, 1e-6);

  const auto at_gamma = bloch_eigenvalues(m, g, {0, 0, 0});
  const double gap_gamma = at_gamma[homo + 1] - at_gamma[homo];
  EXPECT_GT(gap_gamma, 1.0);
}

TEST(Bloch, SiliconGapAndValenceWidthAreReasonable) {
  const TbModel m = gsp_silicon();
  System si = structures::diamond(Element::Si, 5.431, 1, 1, 1);
  const auto kpts = monkhorst_pack_grid(si.cell(), 4, 4, 4);
  const KGridResult res =
      kgrid_band_energy(m, si, kpts, si.total_valence_electrons());
  // GSP silicon: indirect gap ~ 1.2 eV class; valence width ~ 12 eV.
  EXPECT_GT(res.gap, 0.3);
  EXPECT_LT(res.gap, 3.0);

  const auto gamma = bloch_eigenvalues(m, si, {0, 0, 0});
  const double valence_width = gamma[si.total_valence_electrons() / 2 - 1] -
                               gamma.front();
  EXPECT_GT(valence_width, 8.0);
  EXPECT_LT(valence_width, 16.0);
}

TEST(Bloch, KGridEnergyConvergesWithSampling) {
  // Denser grids must converge; 4^3 vs 6^3 should agree to ~10 meV/atom.
  const TbModel m = gsp_silicon();
  System si = structures::diamond(Element::Si, 5.431, 1, 1, 1);
  const int ne = si.total_valence_electrons();
  const auto coarse = kgrid_band_energy(
      m, si, monkhorst_pack_grid(si.cell(), 3, 3, 3), ne);
  const auto fine = kgrid_band_energy(
      m, si, monkhorst_pack_grid(si.cell(), 6, 6, 6), ne);
  EXPECT_NEAR(coarse.band_energy / si.size(), fine.band_energy / si.size(),
              0.1);
}

TEST(Bloch, KPathInterpolation) {
  const std::vector<Vec3> way{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}};
  const auto path = interpolate_kpath(way, 4);
  ASSERT_EQ(path.size(), 9u);  // 4 + 4 + endpoint
  EXPECT_EQ(path.front(), (Vec3{0, 0, 0}));
  EXPECT_EQ(path.back(), (Vec3{1, 1, 0}));
  EXPECT_NEAR(path[2].x, 0.5, 1e-12);
}

TEST(Bloch, MonkhorstPackCountsAndSymmetry) {
  System si = structures::diamond(Element::Si, 5.431, 1, 1, 1);
  const auto grid = monkhorst_pack_grid(si.cell(), 2, 3, 4);
  EXPECT_EQ(grid.size(), 24u);
  // Standard MP grids with even divisions avoid Gamma.
  const auto grid2 = monkhorst_pack_grid(si.cell(), 2, 2, 2);
  for (const Vec3& k : grid2) EXPECT_GT(norm(k), 1e-6);
  // Gamma-centered grids include it.
  const auto gamma_grid = monkhorst_pack_grid(si.cell(), 2, 2, 2, true);
  bool has_gamma = false;
  for (const Vec3& k : gamma_grid) has_gamma |= (norm(k) < 1e-12);
  EXPECT_TRUE(has_gamma);
}

TEST(Bloch, RejectsNonPeriodicSystems) {
  const TbModel m = xwch_carbon();
  System cluster = structures::dimer(Element::C, 1.4);
  EXPECT_THROW((void)bloch_eigenvalues(m, cluster, {0, 0, 0}), Error);
}

}  // namespace
}  // namespace tbmd::tb
