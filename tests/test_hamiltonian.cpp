// Tests for the dense TB Hamiltonian assembly: analytic dimer spectra,
// symmetry, translation and rotation invariance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/linalg/eigen_sym.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/radial.hpp"
#include "src/util/error.hpp"
#include "src/util/random.hpp"

namespace tbmd::tb {
namespace {

linalg::Matrix hamiltonian_of(const TbModel& model, const System& s) {
  NeighborList list;
  list.build(s.positions(), s.cell(), {model.cutoff(), 0.3});
  return build_hamiltonian(model, s, list);
}

TEST(Hamiltonian, DimensionsAndOnsite) {
  const TbModel m = xwch_carbon();
  const System s = structures::dimer(Element::C, 1.42);
  const linalg::Matrix h = hamiltonian_of(m, s);
  ASSERT_EQ(h.rows(), 8u);
  EXPECT_DOUBLE_EQ(h(0, 0), m.e_s);
  EXPECT_DOUBLE_EQ(h(1, 1), m.e_p);
  EXPECT_DOUBLE_EQ(h(5, 5), m.e_p);
}

TEST(Hamiltonian, IsSymmetric) {
  const TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.05, 3);
  const linalg::Matrix h = hamiltonian_of(m, s);
  EXPECT_LT(linalg::symmetry_defect(h), 1e-14);
}

TEST(Hamiltonian, DimerPiLevelsAnalytic) {
  // For a dimer along z the px/py manifolds decouple:
  // eigenvalues e_p +- V_ppp * s(r), each doubly degenerate.
  const TbModel m = xwch_carbon();
  const double r = 1.42;
  const System s = structures::dimer(Element::C, r);
  const auto vals = linalg::eigvalsh(hamiltonian_of(m, s));
  const double sc = evaluate_scaling(m.hopping, r).value;
  const double lo = m.e_p - std::fabs(m.bonds.ppp) * sc;
  const double hi = m.e_p + std::fabs(m.bonds.ppp) * sc;

  auto count_near = [&](double target) {
    int c = 0;
    for (const double v : vals) c += (std::fabs(v - target) < 1e-9);
    return c;
  };
  EXPECT_EQ(count_near(lo), 2) << "bonding pi pair";
  EXPECT_EQ(count_near(hi), 2) << "antibonding pi pair";
}

TEST(Hamiltonian, DimerSigmaBlockAnalytic) {
  // The sigma manifold (s, pz on both atoms) splits by inversion symmetry
  // into two 2x2 blocks:
  //   gerade:   [e_s + Vss,  sqrt stuff ...] -- verified via characteristic
  // Instead of hand-solving, verify the full spectrum satisfies the secular
  // determinant of the 4x4 sigma block.
  const TbModel m = gsp_silicon();
  const double r = 2.35;
  const System s = structures::dimer(Element::Si, r);
  const auto vals = linalg::eigvalsh(hamiltonian_of(m, s));
  const double sc = evaluate_scaling(m.hopping, r).value;
  const double vss = m.bonds.sss * sc;
  const double vsp = m.bonds.sps * sc;
  const double vpp = m.bonds.pps * sc;

  // Gerade block: [[e_s + vss, sqrt2? ...]] -- direct 2x2 forms:
  //   |e_s + vss - E, vsp; vsp, e_p - vpp - E| = 0   (one parity)
  //   |e_s - vss - E, vsp; vsp, e_p + vpp - E| = 0   (other parity)
  auto solve22 = [](double a, double b, double c) {
    // eigenvalues of [[a, c], [c, b]]
    const double mean = 0.5 * (a + b);
    const double disc = std::sqrt(0.25 * (a - b) * (a - b) + c * c);
    return std::pair<double, double>{mean - disc, mean + disc};
  };
  const auto [g1, g2] = solve22(m.e_s + vss, m.e_p - vpp, vsp);
  const auto [u1, u2] = solve22(m.e_s - vss, m.e_p + vpp, vsp);

  std::vector<double> expected{g1, g2, u1, u2,
                               m.e_p + m.bonds.ppp * sc,
                               m.e_p + m.bonds.ppp * sc,
                               m.e_p - m.bonds.ppp * sc,
                               m.e_p - m.bonds.ppp * sc};
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(vals.size(), expected.size());
  for (std::size_t k = 0; k < vals.size(); ++k) {
    EXPECT_NEAR(vals[k], expected[k], 1e-9) << "state " << k;
  }
}

TEST(Hamiltonian, TranslationInvariance) {
  const TbModel m = xwch_carbon();
  System a = structures::c60();
  System b = a;
  for (auto& r : b.positions()) r += Vec3{3.0, -1.0, 2.5};
  const auto va = linalg::eigvalsh(hamiltonian_of(m, a));
  const auto vb = linalg::eigvalsh(hamiltonian_of(m, b));
  for (std::size_t k = 0; k < va.size(); ++k) {
    EXPECT_NEAR(va[k], vb[k], 1e-10);
  }
}

TEST(Hamiltonian, RotationInvarianceOfSpectrum) {
  const TbModel m = xwch_carbon();
  System a = structures::dimer(Element::C, 1.35);
  a.add_atom(Element::C, {1.1, 0.9, -0.3});  // break symmetry: triatomic

  // Rotate by a random orthogonal matrix (Rodrigues about a random axis).
  Rng rng(17);
  const Vec3 axis = normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                    rng.uniform(-1, 1)});
  const double th = 1.1;
  auto rotate = [&](const Vec3& v) {
    return v * std::cos(th) + cross(axis, v) * std::sin(th) +
           axis * dot(axis, v) * (1.0 - std::cos(th));
  };
  System b = a;
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.positions()[i] = rotate(a.positions()[i]);
  }
  const auto va = linalg::eigvalsh(hamiltonian_of(m, a));
  const auto vb = linalg::eigvalsh(hamiltonian_of(m, b));
  for (std::size_t k = 0; k < va.size(); ++k) {
    EXPECT_NEAR(va[k], vb[k], 1e-9);
  }
}

TEST(Hamiltonian, PeriodicImageCouplingAppears) {
  // Two atoms straddling a periodic boundary must be coupled.
  System s(Cell::orthorhombic(8, 8, 8));
  s.add_atom(Element::C, {0.3, 4, 4});
  s.add_atom(Element::C, {7.0, 4, 4});  // 1.3 A via the image
  const TbModel m = xwch_carbon();
  const linalg::Matrix h = hamiltonian_of(m, s);
  EXPECT_GT(std::fabs(h(0, 4)), 1.0);  // strong ss coupling
}

TEST(Hamiltonian, GrapheneBandEdgesAreBounded) {
  // Sanity on a real lattice: all eigenvalues lie inside the union of
  // Gershgorin discs, and the spectrum is symmetric-ish around the p level
  // by electron-hole structure of the pi network (loose check).
  const TbModel m = xwch_carbon();
  const System s = structures::graphene(Element::C, 1.42, 3, 2);
  const linalg::Matrix h = hamiltonian_of(m, s);
  const auto vals = linalg::eigvalsh(h);
  double radius = 0.0;
  for (std::size_t i = 0; i < h.rows(); ++i) {
    double r = 0.0;
    for (std::size_t j = 0; j < h.cols(); ++j) {
      if (i != j) r += std::fabs(h(i, j));
    }
    radius = std::max(radius, r);
  }
  EXPECT_GE(vals.front(), -radius + std::min(m.e_s, m.e_p) - 1.0);
  EXPECT_LE(vals.back(), radius + std::max(m.e_s, m.e_p) + 1.0);
}

TEST(Hamiltonian, WrongSpeciesRejected) {
  const TbModel m = xwch_carbon();
  System s = structures::dimer(Element::Si, 2.3);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  EXPECT_THROW((void)build_hamiltonian(m, s, list), Error);
}

TEST(Hamiltonian, IsolatedAtomsGiveOnsiteSpectrum) {
  const TbModel m = xwch_carbon();
  const System s = structures::chain(Element::C, 3, 10.0);  // far apart
  const auto vals = linalg::eigvalsh(hamiltonian_of(m, s));
  int n_s = 0, n_p = 0;
  for (const double v : vals) {
    if (std::fabs(v - m.e_s) < 1e-10) ++n_s;
    if (std::fabs(v - m.e_p) < 1e-10) ++n_p;
  }
  EXPECT_EQ(n_s, 3);
  EXPECT_EQ(n_p, 9);
}

}  // namespace
}  // namespace tbmd::tb
