// Tests for the service layer: checkpoint round-trips, kill-and-resume
// bit-identity (NVE and NVT, classical and both tight-binding engines),
// binary trajectory encode/decode/resume, job specs, and the job runner's
// fault isolation and preemption behavior.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/io/binary_trajectory.hpp"
#include "src/io/xyz.hpp"
#include "src/md/velocities.hpp"
#include "src/structures/builders.hpp"
#include "src/svc/checkpoint.hpp"
#include "src/svc/job_runner.hpp"
#include "src/svc/job_spec.hpp"
#include "src/util/error.hpp"

namespace tbmd::svc {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the system temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("tbmd_svc_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

/// Small LJ argon job: fast enough for dozens of resume permutations.
JobSpec lj_job(const std::string& name, long steps,
               md::ThermostatSpec thermostat = {}) {
  JobSpec s;
  s.name = name;
  s.structure = "fcc";
  s.element = Element::Ar;
  s.lattice = 5.26;
  s.cells = {2, 2, 2};
  s.model = "lj";
  s.lj_cutoff = 4.8;
  s.calc.skin = 0.4;
  s.dt = 2.0;
  s.steps = steps;
  s.temperature = 60.0;
  s.seed = 9;
  s.thermostat = thermostat;
  s.sample_every = 5;
  s.checkpoint_every = 0;
  return s;
}

/// Tiny carbon diamond cell for the tight-binding engines.
JobSpec tb_job(const std::string& name, CalcMode mode, long steps) {
  JobSpec s;
  s.name = name;
  s.structure = "diamond";
  s.element = Element::C;
  s.cells = {2, 2, 2};
  s.calc.mode = mode;
  s.dt = 1.0;
  s.steps = steps;
  s.temperature = 300.0;
  s.seed = 4;
  s.sample_every = 0;
  return s;
}

std::vector<JobResult> run_sweep(const std::vector<JobSpec>& jobs,
                                 const std::string& dir, long budget = -1,
                                 bool resume = true, int workers = 1) {
  SweepOptions opt;
  opt.workers = workers;
  opt.output_dir = dir;
  opt.resume = resume;
  opt.step_budget = budget;
  opt.verbose = false;
  return JobRunner(jobs, opt).run();
}

/// EXPECT bit-identical state: positions, velocities, and freshly
/// recomputed energy/forces must match to the last ulp.
void expect_bit_identical(const JobSpec& spec, const std::string& ckpt_a,
                          const std::string& ckpt_b) {
  const Checkpoint a = read_checkpoint(ckpt_a);
  const Checkpoint b = read_checkpoint(ckpt_b);
  ASSERT_EQ(a.step, b.step);
  ASSERT_EQ(a.system.size(), b.system.size());
  for (std::size_t i = 0; i < a.system.size(); ++i) {
    EXPECT_EQ(a.system.positions()[i], b.system.positions()[i]) << "atom " << i;
    EXPECT_EQ(a.system.velocities()[i], b.system.velocities()[i])
        << "atom " << i;
  }
  ASSERT_EQ(a.thermostat_state.size(), b.thermostat_state.size());
  for (std::size_t k = 0; k < a.thermostat_state.size(); ++k) {
    EXPECT_EQ(a.thermostat_state[k], b.thermostat_state[k]);
  }

  const auto calc_a = spec.make_calculator(a.system);
  const auto calc_b = spec.make_calculator(b.system);
  const ForceResult fa = calc_a->compute(a.system);
  const ForceResult fb = calc_b->compute(b.system);
  EXPECT_EQ(fa.energy, fb.energy);
  ASSERT_EQ(fa.forces.size(), fb.forces.size());
  for (std::size_t i = 0; i < fa.forces.size(); ++i) {
    EXPECT_EQ(fa.forces[i].x, fb.forces[i].x) << "atom " << i;
    EXPECT_EQ(fa.forces[i].y, fb.forces[i].y) << "atom " << i;
    EXPECT_EQ(fa.forces[i].z, fb.forces[i].z) << "atom " << i;
  }
}

/// Run `spec` to completion twice -- once uninterrupted, once killed by a
/// step budget and resumed -- and require bit-identical final state.
void check_kill_and_resume(const JobSpec& spec, long kill_after,
                           const std::string& tag) {
  ScratchDir base("base_" + tag);
  ScratchDir killed("killed_" + tag);

  const auto ref = run_sweep({spec}, base.path());
  ASSERT_EQ(ref[0].status, JobStatus::kCompleted);
  EXPECT_EQ(ref[0].steps_done, spec.steps);

  const auto first = run_sweep({spec}, killed.path(), kill_after);
  ASSERT_EQ(first[0].status, JobStatus::kPreempted);
  EXPECT_EQ(first[0].steps_done, kill_after);

  const auto second = run_sweep({spec}, killed.path());
  ASSERT_EQ(second[0].status, JobStatus::kCompleted);
  EXPECT_TRUE(second[0].resumed);
  EXPECT_EQ(second[0].steps_run, spec.steps - kill_after);

  EXPECT_EQ(ref[0].final_energy, second[0].final_energy);
  EXPECT_EQ(ref[0].final_temperature, second[0].final_temperature);
  expect_bit_identical(spec, base.file(spec.name + ".ckpt"),
                       killed.file(spec.name + ".ckpt"));
}

TEST(Checkpoint, RoundTripsEveryField) {
  ScratchDir dir("ckpt");
  Checkpoint ck;
  ck.step = 17;
  ck.total_steps = 40;
  ck.system = structures::fcc(Element::Ar, 5.26, 1, 1, 2);
  md::maxwell_boltzmann_velocities(ck.system, 80.0, 3);
  ck.system.set_frozen(1, true);
  ck.thermostat_target = 123.5;
  ck.thermostat_state = {0.25, -1.75, 3e-17, 12.0};
  Rng rng(99);
  (void)rng.gaussian();  // populate the cached Marsaglia pair
  ck.rng = rng.state();

  const std::string path = dir.file("a.ckpt");
  write_checkpoint(path, ck);
  EXPECT_TRUE(is_checkpoint_file(path));
  const Checkpoint back = read_checkpoint(path);

  EXPECT_EQ(back.step, 17);
  EXPECT_EQ(back.total_steps, 40);
  EXPECT_FALSE(back.complete());
  ASSERT_EQ(back.system.size(), ck.system.size());
  for (std::size_t i = 0; i < ck.system.size(); ++i) {
    EXPECT_EQ(back.system.positions()[i], ck.system.positions()[i]);
    EXPECT_EQ(back.system.velocities()[i], ck.system.velocities()[i]);
    EXPECT_EQ(back.system.species()[i], ck.system.species()[i]);
    EXPECT_EQ(back.system.frozen(i), ck.system.frozen(i));
  }
  EXPECT_TRUE(back.system.cell().periodic());
  EXPECT_EQ(back.thermostat_target, 123.5);
  EXPECT_EQ(back.thermostat_state, ck.thermostat_state);
  Rng resumed(1);
  resumed.set_state(back.rng);
  Rng original(99);
  (void)original.gaussian();
  for (int k = 0; k < 8; ++k) EXPECT_EQ(resumed.gaussian(), original.gaussian());
}

TEST(Checkpoint, RejectsCorruptFiles) {
  ScratchDir dir("ckpt_bad");
  EXPECT_FALSE(is_checkpoint_file(dir.file("missing.ckpt")));
  const std::string path = dir.file("bad.ckpt");
  std::ofstream(path) << "not a checkpoint";
  EXPECT_FALSE(is_checkpoint_file(path));
  EXPECT_THROW((void)read_checkpoint(path), Error);
}

TEST(KillAndResume, BitIdenticalNveLennardJones) {
  check_kill_and_resume(lj_job("nve", 40), 17, "lj_nve");
}

TEST(KillAndResume, BitIdenticalBinnedNeighborList) {
  // 4x4x4 fcc = 256 atoms, above the brute-force threshold: exercises the
  // binned neighbor build, whose bin-order row traversal and rebuild-time
  // image shifts are exactly what the determinism sort/exact-shift fixes
  // canonicalize.
  JobSpec spec = lj_job("binned", 30);
  spec.cells = {4, 4, 4};
  check_kill_and_resume(spec, 13, "lj_binned");
}

TEST(KillAndResume, BitIdenticalNvtNoseHoover) {
  check_kill_and_resume(
      lj_job("nvt", 40, md::ThermostatSpec::nose_hoover(90.0, 50.0, 2)), 23,
      "lj_nvt");
}

TEST(KillAndResume, BitIdenticalNvtRampAcrossRestart) {
  JobSpec spec = lj_job("ramp", 40, md::ThermostatSpec::nose_hoover(60.0));
  spec.ramp_to = 120.0;
  spec.ramp_steps = 30;
  // Kill inside the ramp window: the resumed run must recompute the same
  // per-step targets from the step index alone.
  check_kill_and_resume(spec, 11, "lj_ramp");
}

TEST(KillAndResume, BitIdenticalExactTightBinding) {
  check_kill_and_resume(tb_job("tbx", CalcMode::kExact, 8), 3, "tb_exact");
}

TEST(KillAndResume, BitIdenticalOrderN) {
  check_kill_and_resume(tb_job("tbon", CalcMode::kOrderN, 8), 3, "tb_on");
}

TEST(KillAndResume, RepeatedPreemptionReachesSameState) {
  ScratchDir base("base_steps");
  ScratchDir chopped("chopped");
  const JobSpec spec =
      lj_job("chop", 30, md::ThermostatSpec::berendsen(70.0, 80.0));

  const auto ref = run_sweep({spec}, base.path());
  ASSERT_EQ(ref[0].status, JobStatus::kCompleted);

  // Advance in slices of 7 steps: 7, 14, 21, 28, done.
  long done = 0;
  for (int invocation = 0; invocation < 8 && done < spec.steps; ++invocation) {
    const auto r = run_sweep({spec}, chopped.path(), 7);
    done = r[0].steps_done;
  }
  EXPECT_EQ(done, spec.steps);
  expect_bit_identical(spec, base.file("chop.ckpt"), chopped.file("chop.ckpt"));
}

TEST(BinaryTrajectory, LosslessRoundTrip) {
  ScratchDir dir("traj_lossless");
  System s = structures::diamond(Element::C, 3.567, 1, 1, 2);
  md::maxwell_boltzmann_velocities(s, 300.0, 5);
  const std::string path = dir.file("t.tbt");
  io::BinaryTrajectoryOptions opt;
  opt.lossless = true;
  opt.velocities = true;
  std::vector<System> frames;
  {
    io::BinaryTrajectoryWriter w(path, s, opt);
    for (long f = 0; f < 4; ++f) {
      structures::perturb(s, 0.05, 100 + static_cast<unsigned>(f));
      w.add_frame(s, f * 10);
      frames.push_back(s);
    }
    EXPECT_EQ(w.frames_written(), 4u);
  }
  io::BinaryTrajectoryReader r(path);
  EXPECT_EQ(r.natoms(), s.size());
  EXPECT_TRUE(r.lossless());
  EXPECT_TRUE(r.has_velocities());
  io::TrajectoryFrame frame;
  for (std::size_t f = 0; f < 4; ++f) {
    ASSERT_TRUE(r.next(frame));
    EXPECT_EQ(frame.step, static_cast<long>(f) * 10);
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(frame.positions[i], frames[f].positions()[i]);
      EXPECT_EQ(frame.velocities[i], frames[f].velocities()[i]);
    }
  }
  EXPECT_FALSE(r.next(frame));
}

TEST(BinaryTrajectory, QuantizedStaysOnGrid) {
  ScratchDir dir("traj_quant");
  System s = structures::fcc(Element::Ar, 5.26, 1, 1, 1);
  const std::string path = dir.file("t.tbt");
  {
    io::BinaryTrajectoryWriter w(path, s);
    for (long f = 0; f < 3; ++f) {
      structures::perturb(s, 0.2, 7 + static_cast<unsigned>(f));
      w.add_frame(s, f);
    }
  }
  io::BinaryTrajectoryReader r(path);
  const double q = r.position_quantum();
  EXPECT_EQ(q, 1e-4);
  io::TrajectoryFrame frame;
  System check = structures::fcc(Element::Ar, 5.26, 1, 1, 1);
  for (long f = 0; f < 3; ++f) {
    ASSERT_TRUE(r.next(frame));
    structures::perturb(check, 0.2, 7 + static_cast<unsigned>(f));
    for (std::size_t i = 0; i < check.size(); ++i) {
      EXPECT_NEAR(frame.positions[i].x, check.positions()[i].x, 0.5 * q);
      EXPECT_NEAR(frame.positions[i].y, check.positions()[i].y, 0.5 * q);
      EXPECT_NEAR(frame.positions[i].z, check.positions()[i].z, 0.5 * q);
    }
  }
}

TEST(BinaryTrajectory, ResumeTruncatesAndMatchesUninterrupted) {
  ScratchDir dir("traj_resume");
  System s = structures::fcc(Element::Ar, 5.26, 1, 1, 2);
  std::vector<System> frames;
  for (long f = 0; f < 6; ++f) {
    structures::perturb(s, 0.1, 20 + static_cast<unsigned>(f));
    frames.push_back(s);
  }

  // Uninterrupted reference: all six frames in one writer.
  const std::string ref_path = dir.file("ref.tbt");
  {
    io::BinaryTrajectoryWriter w(ref_path, frames[0]);
    for (long f = 0; f < 6; ++f) {
      w.add_frame(frames[static_cast<std::size_t>(f)], f);
    }
  }

  // Interrupted: frames 0-4 written, then a resume keeps steps <= 2 (as
  // if a checkpoint at step 2 were being restarted) and re-appends 3-5.
  const std::string cut_path = dir.file("cut.tbt");
  {
    io::BinaryTrajectoryWriter w(cut_path, frames[0]);
    for (long f = 0; f < 5; ++f) {
      w.add_frame(frames[static_cast<std::size_t>(f)], f);
    }
  }
  {
    auto w = io::BinaryTrajectoryWriter::resume(cut_path, frames[2], 2);
    EXPECT_EQ(w.frames_written(), 3u);
    for (long f = 3; f < 6; ++f) {
      w.add_frame(frames[static_cast<std::size_t>(f)], f);
    }
  }

  // The resumed file must be byte-identical to the uninterrupted one.
  std::ifstream fa(ref_path, std::ios::binary);
  std::ifstream fb(cut_path, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(fa)), {});
  const std::string bytes_b((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_EQ(bytes_a.size(), bytes_b.size());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(BinaryTrajectory, XyzConverterMatchesFrames) {
  ScratchDir dir("traj_xyz");
  System s = structures::fcc(Element::Ar, 5.26, 1, 1, 1);
  const std::string tbt = dir.file("t.tbt");
  io::BinaryTrajectoryOptions opt;
  opt.lossless = true;
  {
    io::BinaryTrajectoryWriter w(tbt, s, opt);
    w.add_frame(s, 0);
    structures::perturb(s, 0.1, 3);
    w.add_frame(s, 25);
  }
  const std::string xyz = dir.file("t.xyz");
  EXPECT_EQ(io::trajectory_to_xyz(tbt, xyz), 2u);
  const System last = io::read_xyz_file(xyz);  // reads the... first frame
  ASSERT_EQ(last.size(), s.size());
}

TEST(JobSpec, ParsesStrictConfigs) {
  const io::Config cfg = io::Config::parse_string(
      "name = demo\nstructure = fcc\nelement = Ar\nmodel = lj\n"
      "steps = 12\ndt = 2.0\ntemperature = 80\nthermostat = nose-hoover\n"
      "thermostat_tau = 60\nramp_to = 160\nramp_steps = 8\n");
  const JobSpec s = JobSpec::from_config(cfg);
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.steps, 12);
  EXPECT_TRUE(s.classical());
  EXPECT_EQ(s.thermostat.kind, md::ThermostatKind::kNoseHoover);
  EXPECT_EQ(s.target_at(0), 90.0);   // 80 + (1/8) * 80
  EXPECT_EQ(s.target_at(7), 160.0);  // ramp complete
  EXPECT_EQ(s.target_at(11), 160.0);

  EXPECT_THROW(
      (void)JobSpec::from_config(
          io::Config::parse_string("steps = 5\nstepz = 6\n")),
      Error);  // unknown key 'stepz'
}

TEST(JobSpec, CalculatorKeysSeparateEngines) {
  JobSpec exact = tb_job("a", CalcMode::kExact, 5);
  JobSpec on = tb_job("b", CalcMode::kOrderN, 5);
  JobSpec lj = lj_job("c", 5);
  EXPECT_NE(exact.calculator_key(), on.calculator_key());
  EXPECT_NE(exact.calculator_key(), lj.calculator_key());
  JobSpec exact2 = tb_job("d", CalcMode::kExact, 99);
  EXPECT_EQ(exact.calculator_key(), exact2.calculator_key());
}

TEST(JobSpec, ParsesNumericsKeysIntoTheSharedSpec) {
  const io::Config cfg = io::Config::parse_string(
      "name = numx\nstructure = diamond\nelement = C\nmode = on\n"
      "steps = 4\ndt = 1.0\n"
      "drop_tolerance = 1e-6\nschedule_loosening = 4\nschedule_decay = 0.25\n"
      "precision = mixed\npromote_iteration = 3\npromote_threshold = 5e-4\n"
      "simd = false\nsub_tile = 0.5\nbond_reuse_skin = 0.05\n");
  const JobSpec s = JobSpec::from_config(cfg);
  const NumericsSpec& num = s.calc.numerics;
  EXPECT_EQ(num.drop_tolerance, 1e-6);
  EXPECT_EQ(num.schedule_loosening, 4.0);
  EXPECT_EQ(num.schedule_decay, 0.25);
  EXPECT_EQ(num.precision, PrecisionMode::kMixed);
  EXPECT_EQ(num.promote_iteration, 3);
  EXPECT_EQ(num.promote_threshold, 5e-4);
  EXPECT_FALSE(num.simd);
  EXPECT_EQ(num.sub_tile, 0.5);
  EXPECT_EQ(s.calc.bond_reuse_skin, 0.05);

  // Unknown precision spellings are config errors, not silent defaults.
  EXPECT_THROW((void)NumericsSpec::precision_by_name("quad"), Error);

  // Every numerics knob is part of the calculator identity: jobs that
  // differ there must not share a cached calculator...
  const JobSpec base = tb_job("a", CalcMode::kOrderN, 5);
  JobSpec mixed = base;
  mixed.calc.numerics.precision = PrecisionMode::kMixed;
  EXPECT_NE(base.calculator_key(), mixed.calculator_key());
  JobSpec subtile = base;
  subtile.calc.numerics.sub_tile = 0.25;
  EXPECT_NE(base.calculator_key(), subtile.calculator_key());
  JobSpec nosimd = base;
  nosimd.calc.numerics.simd = false;
  EXPECT_NE(base.calculator_key(), nosimd.calculator_key());
  JobSpec skin = base;
  skin.calc.bond_reuse_skin = 0.05;
  EXPECT_NE(base.calculator_key(), skin.calculator_key());
  // ... while the execution-resource hint stays excluded.
  JobSpec threads = base;
  threads.calc.threads = 7;
  EXPECT_EQ(base.calculator_key(), threads.calculator_key());
}

TEST(JobRunner, FailedJobDoesNotPoisonTheSweep) {
  ScratchDir dir("isolation");
  JobSpec bad = lj_job("bad", 10);
  bad.structure = "xyz";
  bad.xyz_file = dir.file("does_not_exist.xyz");
  const JobSpec good = lj_job("good", 10);

  const auto results = run_sweep({bad, good}, dir.path());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, JobStatus::kFailed);
  EXPECT_FALSE(results[0].error.empty());
  EXPECT_EQ(results[1].status, JobStatus::kCompleted);
  EXPECT_EQ(results[1].steps_done, 10);
  EXPECT_TRUE(fs::exists(dir.file("sweep_summary.csv")));
}

TEST(JobRunner, CompletedJobsAreNotRerun) {
  ScratchDir dir("norerun");
  const JobSpec spec = lj_job("once", 12);
  const auto first = run_sweep({spec}, dir.path());
  ASSERT_EQ(first[0].status, JobStatus::kCompleted);
  const auto again = run_sweep({spec}, dir.path());
  EXPECT_EQ(again[0].status, JobStatus::kCompleted);
  EXPECT_TRUE(again[0].resumed);
  EXPECT_EQ(again[0].steps_run, 0);
  EXPECT_EQ(again[0].final_energy, first[0].final_energy);
}

TEST(JobRunner, MultiWorkerSweepMatchesSerial) {
  ScratchDir serial("serial");
  ScratchDir parallel("parallel");
  std::vector<JobSpec> jobs;
  for (int k = 0; k < 3; ++k) {
    JobSpec s = lj_job("job" + std::to_string(k), 15,
                       md::ThermostatSpec::nose_hoover(60.0 + 20.0 * k));
    s.seed = static_cast<std::uint64_t>(100 + k);
    jobs.push_back(s);
  }
  const auto a = run_sweep(jobs, serial.path(), -1, true, 1);
  const auto b = run_sweep(jobs, parallel.path(), -1, true, 2);
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    ASSERT_EQ(a[k].status, JobStatus::kCompleted);
    ASSERT_EQ(b[k].status, JobStatus::kCompleted);
    EXPECT_EQ(a[k].final_energy, b[k].final_energy);
    expect_bit_identical(jobs[k], serial.file(jobs[k].name + ".ckpt"),
                         parallel.file(jobs[k].name + ".ckpt"));
  }
}

TEST(Sweep, LoadsJobsAndExpandsReplicas) {
  ScratchDir dir("sweepfile");
  std::ofstream(dir.file("j1.cfg"))
      << "structure = fcc\nelement = Ar\nmodel = lj\nsteps = 5\n";
  std::ofstream(dir.file("sweep.cfg"))
      << "jobs = j1.cfg\nreplicas = 3\nworkers = 2\noutput_dir = out\n";
  const Sweep sw = load_sweep(dir.file("sweep.cfg"));
  EXPECT_EQ(sw.workers, 2);
  EXPECT_EQ(sw.output_dir, "out");
  ASSERT_EQ(sw.jobs.size(), 3u);
  EXPECT_EQ(sw.jobs[0].name, "j1-r0");  // name defaults to the file stem
  EXPECT_EQ(sw.jobs[2].name, "j1-r2");
  EXPECT_EQ(sw.jobs[0].seed + 2, sw.jobs[2].seed);

  std::ofstream(dir.file("bad.cfg")) << "jobs = j1.cfg\ntypo_key = 1\n";
  EXPECT_THROW((void)load_sweep(dir.file("bad.cfg")), Error);
}

}  // namespace
}  // namespace tbmd::svc
