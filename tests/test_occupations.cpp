// Tests for electronic occupations: aufbau filling, Fermi-Dirac smearing,
// chemical-potential bisection and the Mermin entropy term.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/linalg/eigen_sym.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/tb/tb_model.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace tbmd::tb {
namespace {

double total_weight(const Occupations& occ) {
  return std::accumulate(occ.weights.begin(), occ.weights.end(), 0.0);
}

TEST(ZeroTemperature, EvenElectronCountFillsPairs) {
  const std::vector<double> eps{-2.0, -1.0, 0.5, 2.0};
  const Occupations occ = occupy(eps, 4, 0.0);
  EXPECT_DOUBLE_EQ(occ.weights[0], 2.0);
  EXPECT_DOUBLE_EQ(occ.weights[1], 2.0);
  EXPECT_DOUBLE_EQ(occ.weights[2], 0.0);
  EXPECT_DOUBLE_EQ(occ.weights[3], 0.0);
  EXPECT_DOUBLE_EQ(occ.band_energy, -6.0);
  EXPECT_DOUBLE_EQ(occ.fermi_level, 0.5 * (-1.0 + 0.5));
  EXPECT_DOUBLE_EQ(occ.entropy_term, 0.0);
}

TEST(ZeroTemperature, OddElectronLeavesHalfFilledHomo) {
  const std::vector<double> eps{-2.0, -1.0, 0.5, 2.0};
  const Occupations occ = occupy(eps, 3, 0.0);
  EXPECT_DOUBLE_EQ(occ.weights[0], 2.0);
  EXPECT_DOUBLE_EQ(occ.weights[1], 1.0);
  EXPECT_DOUBLE_EQ(occ.band_energy, -5.0);
  EXPECT_DOUBLE_EQ(occ.fermi_level, 0.5 * (-1.0 + 0.5));
}

TEST(ZeroTemperature, FullBandUsesTopLevelAsFermi) {
  const std::vector<double> eps{-1.0, 1.0};
  const Occupations occ = occupy(eps, 4, 0.0);
  EXPECT_DOUBLE_EQ(total_weight(occ), 4.0);
  EXPECT_DOUBLE_EQ(occ.fermi_level, 1.0);
}

TEST(ZeroTemperature, ZeroElectrons) {
  const std::vector<double> eps{-1.0, 1.0};
  const Occupations occ = occupy(eps, 0, 0.0);
  EXPECT_DOUBLE_EQ(total_weight(occ), 0.0);
  EXPECT_DOUBLE_EQ(occ.band_energy, 0.0);
}

TEST(Occupations, InvalidInputsThrow) {
  const std::vector<double> sorted{-1.0, 0.0, 1.0};
  EXPECT_THROW((void)occupy(sorted, -1, 0.0), Error);
  EXPECT_THROW((void)occupy(sorted, 7, 0.0), Error);  // > 2 per state
  const std::vector<double> unsorted{1.0, -1.0};
  EXPECT_THROW((void)occupy(unsorted, 2, 0.0), Error);
}

class FiniteTemperature : public ::testing::TestWithParam<double> {};

TEST_P(FiniteTemperature, ElectronCountConservedByBisection) {
  const double kelvin = GetParam();
  std::vector<double> eps;
  for (int k = 0; k < 40; ++k) eps.push_back(-5.0 + 0.25 * k);
  for (const int ne : {2, 11, 20, 39, 78}) {
    const Occupations occ = occupy(eps, ne, kelvin);
    EXPECT_NEAR(total_weight(occ), static_cast<double>(ne), 1e-8)
        << "T = " << kelvin << ", Ne = " << ne;
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, FiniteTemperature,
                         ::testing::Values(50.0, 300.0, 1000.0, 3000.0));

TEST(FiniteTemperatureBehavior, WeightsAreMonotoneNonIncreasing) {
  std::vector<double> eps;
  for (int k = 0; k < 30; ++k) eps.push_back(-3.0 + 0.2 * k);
  const Occupations occ = occupy(eps, 20, 1000.0);
  for (std::size_t k = 1; k < occ.weights.size(); ++k) {
    EXPECT_LE(occ.weights[k], occ.weights[k - 1] + 1e-12);
  }
  for (const double w : occ.weights) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 2.0);
  }
}

TEST(FiniteTemperatureBehavior, HalfFillingAtSymmetricSpectrum) {
  // Symmetric spectrum, half filling: mu must sit at the center (0).
  std::vector<double> eps{-2.0, -1.0, 1.0, 2.0};
  const Occupations occ = occupy(eps, 4, 700.0);
  EXPECT_NEAR(occ.fermi_level, 0.0, 1e-6);
  EXPECT_NEAR(occ.weights[0] + occ.weights[3], 2.0, 1e-8);  // e-h symmetry
}

TEST(FiniteTemperatureBehavior, ReducesToStepFunctionAtLowT) {
  std::vector<double> eps{-2.0, -1.0, 1.0, 2.0};
  const Occupations cold = occupy(eps, 4, 1.0);
  EXPECT_NEAR(cold.weights[0], 2.0, 1e-9);
  EXPECT_NEAR(cold.weights[1], 2.0, 1e-9);
  EXPECT_NEAR(cold.weights[2], 0.0, 1e-9);
}

TEST(FiniteTemperatureBehavior, EntropyTermIsNonPositiveAndGrowsWithT) {
  std::vector<double> eps{-1.0, -0.5, -0.1, 0.1, 0.5, 1.0};
  const Occupations t1 = occupy(eps, 6, 500.0);
  const Occupations t2 = occupy(eps, 6, 2000.0);
  EXPECT_LE(t1.entropy_term, 0.0);
  EXPECT_LE(t2.entropy_term, t1.entropy_term);  // more negative when hotter
}

TEST(FiniteTemperatureBehavior, BandEnergyAboveGroundStateAtFiniteT) {
  std::vector<double> eps{-2.0, -1.0, 1.0, 2.0};
  const Occupations cold = occupy(eps, 4, 0.0);
  const Occupations hot = occupy(eps, 4, 4000.0);
  EXPECT_GT(hot.band_energy, cold.band_energy - 1e-12);
  // But the free energy E + (-TS) must stay below E_hot (variational).
  EXPECT_LE(hot.band_energy + hot.entropy_term, hot.band_energy);
}

/// Fermi smearing on the 216-atom carbon gate system (the spectrum every
/// accuracy CI gate runs on): electron-count conservation, the Mermin
/// entropy term in the free energy, and the T -> 0 limit reproducing the
/// integer-occupation aufbau path.
TEST(GateSystem, FermiSmearingOn216AtomDiamond) {
  const tb::TbModel model = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 3, 3, 3);
  structures::perturb(s, 0.02, 13);
  ASSERT_EQ(s.size(), 216u);
  NeighborList list;
  list.ensure(s.positions(), s.cell(), {model.cutoff(), 0.3});
  const linalg::Matrix h = build_hamiltonian(model, s, list);
  const linalg::SymmetricEigenSolution sol = linalg::eigh(h);
  const int ne = s.total_valence_electrons();
  ASSERT_EQ(ne, 4 * 216);

  const Occupations cold = occupy(sol.values, ne, 0.0);
  for (const double kelvin : {100.0, 300.0, 2000.0}) {
    const Occupations occ = occupy(sol.values, ne, kelvin);
    // Sum-to-N: the bisected chemical potential conserves the count.
    EXPECT_NEAR(total_weight(occ), static_cast<double>(ne), 1e-7)
        << "T = " << kelvin;
    // The Mermin term is nonpositive and the free energy variational:
    // E - TS <= E at the same occupations.
    EXPECT_LE(occ.entropy_term, 0.0);
    EXPECT_LE(occ.band_energy + occ.entropy_term, occ.band_energy + 1e-12);
    // Smearing can only raise the band energy above the aufbau minimum.
    EXPECT_GE(occ.band_energy, cold.band_energy - 1e-9);
  }

  // T -> 0 limit: diamond is gapped, so low-temperature smearing must
  // reproduce the integer-occupation path exactly (weights, band energy,
  // vanishing entropy).
  const Occupations t0 = occupy(sol.values, ne, 1.0);
  EXPECT_NEAR(t0.band_energy, cold.band_energy, 1e-8);
  EXPECT_NEAR(t0.entropy_term, 0.0, 1e-10);
  for (std::size_t k = 0; k < t0.weights.size(); ++k) {
    EXPECT_NEAR(t0.weights[k], cold.weights[k], 1e-9) << "state " << k;
  }
}

TEST(FiniteTemperatureBehavior, DegenerateLevelsShareOccupation) {
  // Two degenerate states at the Fermi level with one electron pair left:
  // each must receive half of it.
  std::vector<double> eps{-1.0, 0.0, 0.0, 5.0};
  const Occupations occ = occupy(eps, 4, 300.0);
  EXPECT_NEAR(occ.weights[1], occ.weights[2], 1e-10);
  EXPECT_NEAR(occ.weights[1], 1.0, 1e-6);
}

}  // namespace
}  // namespace tbmd::tb
