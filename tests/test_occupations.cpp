// Tests for electronic occupations: aufbau filling, Fermi-Dirac smearing,
// chemical-potential bisection and the Mermin entropy term.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/tb/occupations.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace tbmd::tb {
namespace {

double total_weight(const Occupations& occ) {
  return std::accumulate(occ.weights.begin(), occ.weights.end(), 0.0);
}

TEST(ZeroTemperature, EvenElectronCountFillsPairs) {
  const std::vector<double> eps{-2.0, -1.0, 0.5, 2.0};
  const Occupations occ = occupy(eps, 4, 0.0);
  EXPECT_DOUBLE_EQ(occ.weights[0], 2.0);
  EXPECT_DOUBLE_EQ(occ.weights[1], 2.0);
  EXPECT_DOUBLE_EQ(occ.weights[2], 0.0);
  EXPECT_DOUBLE_EQ(occ.weights[3], 0.0);
  EXPECT_DOUBLE_EQ(occ.band_energy, -6.0);
  EXPECT_DOUBLE_EQ(occ.fermi_level, 0.5 * (-1.0 + 0.5));
  EXPECT_DOUBLE_EQ(occ.entropy_term, 0.0);
}

TEST(ZeroTemperature, OddElectronLeavesHalfFilledHomo) {
  const std::vector<double> eps{-2.0, -1.0, 0.5, 2.0};
  const Occupations occ = occupy(eps, 3, 0.0);
  EXPECT_DOUBLE_EQ(occ.weights[0], 2.0);
  EXPECT_DOUBLE_EQ(occ.weights[1], 1.0);
  EXPECT_DOUBLE_EQ(occ.band_energy, -5.0);
  EXPECT_DOUBLE_EQ(occ.fermi_level, 0.5 * (-1.0 + 0.5));
}

TEST(ZeroTemperature, FullBandUsesTopLevelAsFermi) {
  const std::vector<double> eps{-1.0, 1.0};
  const Occupations occ = occupy(eps, 4, 0.0);
  EXPECT_DOUBLE_EQ(total_weight(occ), 4.0);
  EXPECT_DOUBLE_EQ(occ.fermi_level, 1.0);
}

TEST(ZeroTemperature, ZeroElectrons) {
  const std::vector<double> eps{-1.0, 1.0};
  const Occupations occ = occupy(eps, 0, 0.0);
  EXPECT_DOUBLE_EQ(total_weight(occ), 0.0);
  EXPECT_DOUBLE_EQ(occ.band_energy, 0.0);
}

TEST(Occupations, InvalidInputsThrow) {
  const std::vector<double> sorted{-1.0, 0.0, 1.0};
  EXPECT_THROW((void)occupy(sorted, -1, 0.0), Error);
  EXPECT_THROW((void)occupy(sorted, 7, 0.0), Error);  // > 2 per state
  const std::vector<double> unsorted{1.0, -1.0};
  EXPECT_THROW((void)occupy(unsorted, 2, 0.0), Error);
}

class FiniteTemperature : public ::testing::TestWithParam<double> {};

TEST_P(FiniteTemperature, ElectronCountConservedByBisection) {
  const double kelvin = GetParam();
  std::vector<double> eps;
  for (int k = 0; k < 40; ++k) eps.push_back(-5.0 + 0.25 * k);
  for (const int ne : {2, 11, 20, 39, 78}) {
    const Occupations occ = occupy(eps, ne, kelvin);
    EXPECT_NEAR(total_weight(occ), static_cast<double>(ne), 1e-8)
        << "T = " << kelvin << ", Ne = " << ne;
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, FiniteTemperature,
                         ::testing::Values(50.0, 300.0, 1000.0, 3000.0));

TEST(FiniteTemperatureBehavior, WeightsAreMonotoneNonIncreasing) {
  std::vector<double> eps;
  for (int k = 0; k < 30; ++k) eps.push_back(-3.0 + 0.2 * k);
  const Occupations occ = occupy(eps, 20, 1000.0);
  for (std::size_t k = 1; k < occ.weights.size(); ++k) {
    EXPECT_LE(occ.weights[k], occ.weights[k - 1] + 1e-12);
  }
  for (const double w : occ.weights) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 2.0);
  }
}

TEST(FiniteTemperatureBehavior, HalfFillingAtSymmetricSpectrum) {
  // Symmetric spectrum, half filling: mu must sit at the center (0).
  std::vector<double> eps{-2.0, -1.0, 1.0, 2.0};
  const Occupations occ = occupy(eps, 4, 700.0);
  EXPECT_NEAR(occ.fermi_level, 0.0, 1e-6);
  EXPECT_NEAR(occ.weights[0] + occ.weights[3], 2.0, 1e-8);  // e-h symmetry
}

TEST(FiniteTemperatureBehavior, ReducesToStepFunctionAtLowT) {
  std::vector<double> eps{-2.0, -1.0, 1.0, 2.0};
  const Occupations cold = occupy(eps, 4, 1.0);
  EXPECT_NEAR(cold.weights[0], 2.0, 1e-9);
  EXPECT_NEAR(cold.weights[1], 2.0, 1e-9);
  EXPECT_NEAR(cold.weights[2], 0.0, 1e-9);
}

TEST(FiniteTemperatureBehavior, EntropyTermIsNonPositiveAndGrowsWithT) {
  std::vector<double> eps{-1.0, -0.5, -0.1, 0.1, 0.5, 1.0};
  const Occupations t1 = occupy(eps, 6, 500.0);
  const Occupations t2 = occupy(eps, 6, 2000.0);
  EXPECT_LE(t1.entropy_term, 0.0);
  EXPECT_LE(t2.entropy_term, t1.entropy_term);  // more negative when hotter
}

TEST(FiniteTemperatureBehavior, BandEnergyAboveGroundStateAtFiniteT) {
  std::vector<double> eps{-2.0, -1.0, 1.0, 2.0};
  const Occupations cold = occupy(eps, 4, 0.0);
  const Occupations hot = occupy(eps, 4, 4000.0);
  EXPECT_GT(hot.band_energy, cold.band_energy - 1e-12);
  // But the free energy E + (-TS) must stay below E_hot (variational).
  EXPECT_LE(hot.band_energy + hot.entropy_term, hot.band_energy);
}

TEST(FiniteTemperatureBehavior, DegenerateLevelsShareOccupation) {
  // Two degenerate states at the Fermi level with one electron pair left:
  // each must receive half of it.
  std::vector<double> eps{-1.0, 0.0, 0.0, 5.0};
  const Occupations occ = occupy(eps, 4, 300.0);
  EXPECT_NEAR(occ.weights[1], occ.weights[2], 1e-10);
  EXPECT_NEAR(occ.weights[1], 1.0, 1e-6);
}

}  // namespace
}  // namespace tbmd::tb
