// Tests for the electronic-structure core: density matrix properties,
// Hellmann-Feynman force consistency with finite differences, repulsive
// terms, and the assembled TightBindingCalculator.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "src/linalg/blas.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/tb/density_matrix.hpp"
#include "src/tb/forces.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/tb/radial.hpp"
#include "src/tb/repulsive.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/random.hpp"

namespace tbmd::tb {
namespace {

TEST(DensityMatrix, TraceEqualsElectronCount) {
  const TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.03, 5);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const auto h = build_hamiltonian(m, s, list);
  const auto eig = linalg::eigh(h);
  const int ne = s.total_valence_electrons();
  const auto occ = occupy(eig.values, ne, 0.0);
  const auto rho = density_matrix(eig.vectors, occ.weights);
  EXPECT_NEAR(linalg::trace(rho), static_cast<double>(ne), 1e-8);
}

TEST(DensityMatrix, BandEnergyEqualsTraceRhoH) {
  const TbModel m = gsp_silicon();
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  structures::perturb(s, 0.05, 6);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const auto h = build_hamiltonian(m, s, list);
  const auto eig = linalg::eigh(h);
  const auto occ = occupy(eig.values, s.total_valence_electrons(), 0.0);
  const auto rho = density_matrix(eig.vectors, occ.weights);
  EXPECT_NEAR(linalg::trace_of_product(rho, h), occ.band_energy, 1e-7);
}

TEST(DensityMatrix, IdempotentAtZeroTemperature) {
  // rho/2 is a projector when every weight is 0 or 2.
  const TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.03, 9);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const auto eig = linalg::eigh(build_hamiltonian(m, s, list));
  const auto occ = occupy(eig.values, s.total_valence_electrons(), 0.0);
  const auto rho = density_matrix(eig.vectors, occ.weights);
  const auto p = rho * 0.5;
  const auto p2 = linalg::matmul(p, p);
  EXPECT_LT(linalg::max_abs(p2 - p), 1e-8);
}

TEST(DensityMatrix, RejectsBadInput) {
  linalg::Matrix c(4, 4);
  std::vector<double> w{1.0, 1.0, 1.0};  // wrong length
  EXPECT_THROW((void)density_matrix(c, w), Error);
  std::vector<double> wneg{1.0, -0.5, 0.0, 0.0};
  EXPECT_THROW((void)density_matrix(c, wneg), Error);
}

TEST(DensityMatrix, RejectsNonFiniteWeights) {
  // Regression: NaN occupations (e.g. from a diverged Fermi-level search)
  // used to propagate silently into rho; they must be rejected up front.
  linalg::Matrix c = linalg::Matrix::identity(4);
  std::vector<double> wnan{2.0, std::nan(""), 0.0, 0.0};
  EXPECT_THROW((void)density_matrix(c, wnan), Error);
  std::vector<double> winf{2.0, std::numeric_limits<double>::infinity(), 0.0,
                           0.0};
  EXPECT_THROW((void)density_matrix(c, winf), Error);
}

// --- finite-difference force validation --------------------------------

double fd_force(Calculator& calc, System& s, std::size_t atom, int axis,
                double h = 1e-5) {
  Vec3 dr{axis == 0 ? h : 0.0, axis == 1 ? h : 0.0, axis == 2 ? h : 0.0};
  s.positions()[atom] += dr;
  const double ep = calc.compute(s).energy;
  s.positions()[atom] -= 2.0 * dr;
  const double em = calc.compute(s).energy;
  s.positions()[atom] += dr;
  return -(ep - em) / (2.0 * h);
}

struct ForceCase {
  const char* name;
  TbModel model;
  System system;
};

class TbForceConsistency : public ::testing::TestWithParam<int> {};

TEST_P(TbForceConsistency, AnalyticMatchesFiniteDifference) {
  const int scenario = GetParam();
  TbModel model = scenario < 2 ? xwch_carbon() : gsp_silicon();
  System s = [&] {
    switch (scenario) {
      case 0: {  // perturbed periodic diamond carbon
        System sys = structures::diamond(Element::C, 3.567, 2, 2, 2);
        structures::perturb(sys, 0.08, 7);
        return sys;
      }
      case 1: {  // C60 molecule (cluster, curved bonding)
        System sys = structures::c60();
        structures::perturb(sys, 0.04, 11);
        return sys;
      }
      case 2: {  // perturbed periodic silicon
        System sys = structures::diamond(Element::Si, 5.431, 2, 2, 2);
        structures::perturb(sys, 0.10, 13);
        return sys;
      }
      default: {  // small silicon cluster
        System sys = structures::diamond(Element::Si, 5.431, 2, 2, 2);
        System cluster;
        for (std::size_t i = 0; i < 10; ++i) {
          cluster.add_atom(Element::Si, sys.positions()[i]);
        }
        structures::perturb(cluster, 0.05, 17);
        return cluster;
      }
    }
  }();

  TightBindingCalculator calc(model);
  const ForceResult r0 = calc.compute(s);

  for (const std::size_t atom : {std::size_t{0}, s.size() / 2, s.size() - 1}) {
    for (int axis = 0; axis < 3; ++axis) {
      const double fd = fd_force(calc, s, atom, axis);
      const double an = axis == 0   ? r0.forces[atom].x
                        : axis == 1 ? r0.forces[atom].y
                                    : r0.forces[atom].z;
      EXPECT_NEAR(an, fd, 5e-5) << "atom " << atom << " axis " << axis;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, TbForceConsistency,
                         ::testing::Values(0, 1, 2, 3));

TEST(TbForces, SumToZeroOnIsolatedCluster) {
  // Newton's third law: no external field, so total force vanishes.
  TbModel m = xwch_carbon();
  System s = structures::c60();
  structures::perturb(s, 0.06, 19);
  TightBindingCalculator calc(m);
  const ForceResult r = calc.compute(s);
  Vec3 total{};
  for (const Vec3& f : r.forces) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

TEST(TbForces, VanishAtEquilibriumLattice) {
  // In the perfect crystal every atom is a symmetry point: forces ~ 0.
  TbModel m = gsp_silicon();
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  TightBindingCalculator calc(m);
  const ForceResult r = calc.compute(s);
  for (const Vec3& f : r.forces) {
    EXPECT_NEAR(norm(f), 0.0, 1e-8);
  }
}

TEST(TbForces, FiniteTemperatureFreeEnergyConsistent) {
  // With Fermi smearing the calculator reports the Mermin free energy;
  // Hellmann-Feynman forces must be consistent with ITS derivative.
  TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.06, 23);
  TbOptions opt;
  opt.electronic_temperature = 2000.0;
  TightBindingCalculator calc(m, opt);
  const ForceResult r0 = calc.compute(s);
  const double fd = fd_force(calc, s, 3, 1);
  EXPECT_NEAR(r0.forces[3].y, fd, 5e-4);
}

// --- repulsive term ------------------------------------------------------

TEST(Repulsive, PairSumDimerAnalytic) {
  const TbModel m = gsp_silicon();
  const double r = 2.3;
  System s = structures::dimer(Element::Si, r);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const RepulsiveResult rep = repulsive_energy_forces(m, s, list);
  const double phi =
      m.phi0 * evaluate_scaling(m.repulsive, r).value;
  EXPECT_NEAR(rep.energy, phi, 1e-12);
  // Repulsive forces push the atoms apart along the bond.
  EXPECT_GT(dot(rep.forces[1] - rep.forces[0], s.displacement(0, 1)), 0.0);
}

TEST(Repulsive, EmbeddedPolynomialMatchesManualSum) {
  const TbModel m = xwch_carbon();
  System s = structures::dimer(Element::C, 1.5);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const RepulsiveResult rep = repulsive_energy_forces(m, s, list);
  const double phi = m.phi0 * evaluate_scaling(m.repulsive, 1.5).value;
  const double f_of_x = evaluate_polynomial(m.embed_coeff, phi).value;
  EXPECT_NEAR(rep.energy, 2.0 * f_of_x, 1e-12);  // one bond seen by 2 atoms
}

TEST(Repulsive, ZeroBeyondCutoff) {
  const TbModel m = gsp_silicon();
  System s = structures::dimer(Element::Si, m.repulsive.r_cut + 0.5);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff() + 1.0, 0.3});
  const RepulsiveResult rep = repulsive_energy_forces(m, s, list);
  EXPECT_DOUBLE_EQ(rep.energy, 0.0);
  EXPECT_NEAR(norm(rep.forces[0]), 0.0, 1e-15);
}

// --- assembled calculator ------------------------------------------------

TEST(TbCalculator, EnergyDecomposesIntoBandPlusRepulsive) {
  TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  TightBindingCalculator calc(m);
  const ForceResult r = calc.compute(s);
  EXPECT_NEAR(r.energy, r.band_energy + r.repulsive_energy, 1e-10);
  EXPECT_LT(r.band_energy, 0.0);
  EXPECT_GT(r.repulsive_energy, 0.0);
  EXPECT_EQ(r.eigenvalues.size(), 4 * s.size());
  // mu must sit strictly inside the gap, between HOMO and LUMO.
  const std::size_t homo = s.total_valence_electrons() / 2 - 1;
  EXPECT_GT(r.fermi_level, r.eigenvalues[homo] - 1e-9);
  EXPECT_LT(r.fermi_level, r.eigenvalues[homo + 1] + 1e-9);
}

TEST(TbCalculator, DiamondIsBoundRelativeToFreeAtoms) {
  // Free-atom reference energy of the XWCH model: 2 e_s + 2 e_p + f(0).
  TbModel m = xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  TightBindingCalculator calc(m);
  const double e_atom_free =
      2.0 * m.e_s + 2.0 * m.e_p + evaluate_polynomial(m.embed_coeff, 0.0).value;
  const double e_per_atom = calc.compute(s).energy / s.size();
  const double cohesive = e_atom_free - e_per_atom;
  // XWCH diamond cohesive energy is ~7.4 eV/atom (paper value); allow slack
  // for the taper substitution.
  EXPECT_GT(cohesive, 5.0);
  EXPECT_LT(cohesive, 10.0);
}

TEST(TbCalculator, GrapheneAndDiamondNearlyDegenerate) {
  TbModel m = xwch_carbon();
  TightBindingCalculator calc(m);
  System d = structures::diamond(Element::C, 3.567, 2, 2, 2);
  System g = structures::graphene(Element::C, 1.42, 3, 2);
  const double ed = calc.compute(d).energy / d.size();
  const double eg = calc.compute(g).energy / g.size();
  // Carbon: the two phases are within ~0.5 eV/atom of each other.
  EXPECT_NEAR(ed, eg, 0.5);
}

TEST(TbCalculator, PhaseTimersAccumulate) {
  TbModel m = gsp_silicon();
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  TightBindingCalculator calc(m);
  (void)calc.compute(s);
  (void)calc.compute(s);
  const auto& timers = calc.phase_timers();
  for (const char* phase :
       {"neighbors", "hamiltonian", "diagonalize", "density", "forces",
        "repulsive"}) {
    EXPECT_GE(timers.seconds(phase), 0.0) << phase;
  }
  EXPECT_GT(timers.seconds("diagonalize"), 0.0);
  EXPECT_GT(timers.total(), 0.0);
}

TEST(TbCalculator, EmptySystem) {
  TightBindingCalculator calc(xwch_carbon());
  System s;
  const ForceResult r = calc.compute(s);
  EXPECT_DOUBLE_EQ(r.energy, 0.0);
  EXPECT_TRUE(r.forces.empty());
}

TEST(TbCalculator, EigenvalueReportingCanBeDisabled) {
  TbOptions opt;
  opt.report_eigenvalues = false;
  TightBindingCalculator calc(xwch_carbon(), opt);
  System s = structures::dimer(Element::C, 1.4);
  const ForceResult r = calc.compute(s);
  EXPECT_TRUE(r.eigenvalues.empty());
}

}  // namespace
}  // namespace tbmd::tb
