// Tests for src/geom: Vec3, Mat3 and periodic Cell behavior.

#include <gtest/gtest.h>

#include <cmath>

#include "src/geom/cell.hpp"
#include "src/geom/mat3.hpp"
#include "src/geom/vec3.hpp"
#include "src/util/error.hpp"
#include "src/util/random.hpp"

namespace tbmd {
namespace {

TEST(Vec3, BasicArithmetic) {
  const Vec3 a{1, 2, 3}, b{-1, 0.5, 2};
  EXPECT_EQ(a + b, (Vec3{0, 2.5, 5}));
  EXPECT_EQ(a - b, (Vec3{2, 1.5, 1}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
}

TEST(Vec3, DotCrossNorm) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  EXPECT_EQ(cross(x, y), z);
  EXPECT_EQ(cross(y, z), x);
  EXPECT_EQ(cross(z, x), y);
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(norm2_sq(Vec3{1, 2, 2}), 9.0);
  EXPECT_NEAR(norm(normalized(Vec3{4, -3, 12})), 1.0, 1e-15);
}

TEST(Vec3, IndexedAccess) {
  const Vec3 v{7, 8, 9};
  EXPECT_DOUBLE_EQ(v[0], 7);
  EXPECT_DOUBLE_EQ(v[1], 8);
  EXPECT_DOUBLE_EQ(v[2], 9);
}

TEST(Mat3, DeterminantAndInverse) {
  const Mat3 a({2, 0, 0}, {0, 3, 0}, {0, 0, 4});
  EXPECT_DOUBLE_EQ(det(a), 24.0);
  const Mat3 ainv = inverse(a);
  EXPECT_DOUBLE_EQ(ainv(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(ainv(1, 1), 1.0 / 3.0);
}

TEST(Mat3, InverseOfGeneralMatrix) {
  Rng rng(5);
  Mat3 a;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  a(0, 0) += 3.0;  // keep well-conditioned
  a(1, 1) += 3.0;
  a(2, 2) += 3.0;
  const Mat3 prod = a * inverse(a);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Mat3, SingularMatrixThrows) {
  const Mat3 s({1, 2, 3}, {2, 4, 6}, {0, 0, 1});
  EXPECT_THROW((void)inverse(s), Error);
}

TEST(Mat3, RowTimesMatchesTransposedProduct) {
  const Mat3 a({1, 2, 3}, {4, 5, 6}, {7, 8, 10});
  const Vec3 v{1, -1, 2};
  const Vec3 r1 = row_times(v, a);
  const Vec3 r2 = transpose(a) * v;
  EXPECT_NEAR(r1.x, r2.x, 1e-14);
  EXPECT_NEAR(r1.y, r2.y, 1e-14);
  EXPECT_NEAR(r1.z, r2.z, 1e-14);
}

TEST(Cell, DefaultIsNonPeriodicCluster) {
  const Cell c;
  EXPECT_FALSE(c.periodic());
  EXPECT_DOUBLE_EQ(c.volume(), 0.0);
  const Vec3 dr{100, -50, 3};
  EXPECT_EQ(c.minimum_image(dr), dr);  // no wrapping
  EXPECT_EQ(c.wrap(dr), dr);
}

TEST(Cell, OrthorhombicVolumeAndHeights) {
  const Cell c = Cell::orthorhombic(2, 3, 4);
  EXPECT_DOUBLE_EQ(c.volume(), 24.0);
  const auto h = c.heights();
  EXPECT_NEAR(h[0], 2.0, 1e-14);
  EXPECT_NEAR(h[1], 3.0, 1e-14);
  EXPECT_NEAR(h[2], 4.0, 1e-14);
  EXPECT_TRUE(c.orthorhombic());
}

TEST(Cell, MinimumImageOrthorhombic) {
  const Cell c = Cell::cubic(10.0);
  const Vec3 wrapped = c.minimum_image({9.0, -9.0, 4.9});
  EXPECT_NEAR(wrapped.x, -1.0, 1e-12);
  EXPECT_NEAR(wrapped.y, 1.0, 1e-12);
  EXPECT_NEAR(wrapped.z, 4.9, 1e-12);
}

TEST(Cell, MinimumImageIsShorterThanInput) {
  const Cell c = Cell::orthorhombic(7, 9, 11);
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3 dr{rng.uniform(-30, 30), rng.uniform(-30, 30),
                  rng.uniform(-30, 30)};
    const Vec3 mi = c.minimum_image(dr);
    EXPECT_LE(norm(mi), norm(dr) + 1e-12);
    EXPECT_LE(std::fabs(mi.x), 3.5 + 1e-12);
    EXPECT_LE(std::fabs(mi.y), 4.5 + 1e-12);
    EXPECT_LE(std::fabs(mi.z), 5.5 + 1e-12);
  }
}

TEST(Cell, MinimumImageDifferenceIsLatticeVector) {
  const Cell c = Cell::orthorhombic(5, 6, 7);
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec3 dr{rng.uniform(-20, 20), rng.uniform(-20, 20),
                  rng.uniform(-20, 20)};
    const Vec3 shift = c.minimum_image(dr) - dr;
    const Vec3 s = c.to_fractional(shift);
    EXPECT_NEAR(s.x, std::round(s.x), 1e-9);
    EXPECT_NEAR(s.y, std::round(s.y), 1e-9);
    EXPECT_NEAR(s.z, std::round(s.z), 1e-9);
  }
}

TEST(Cell, WrapPutsFractionalInUnitBox) {
  const Cell c = Cell::orthorhombic(4, 5, 6);
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec3 r{rng.uniform(-50, 50), rng.uniform(-50, 50),
                 rng.uniform(-50, 50)};
    const Vec3 s = c.to_fractional(c.wrap(r));
    EXPECT_GE(s.x, -1e-12);
    EXPECT_LT(s.x, 1.0 + 1e-12);
    EXPECT_GE(s.y, -1e-12);
    EXPECT_LT(s.y, 1.0 + 1e-12);
  }
}

TEST(Cell, MixedPeriodicityOnlyWrapsPeriodicAxes) {
  const Cell c = Cell::orthorhombic(10, 10, 30, true, true, false);
  const Vec3 mi = c.minimum_image({9, 9, 25});
  EXPECT_NEAR(mi.x, -1.0, 1e-12);
  EXPECT_NEAR(mi.y, -1.0, 1e-12);
  EXPECT_NEAR(mi.z, 25.0, 1e-12);  // z is open
}

TEST(Cell, TriclinicFractionalRoundTrip) {
  const Cell c({4, 0, 0}, {1, 5, 0}, {0.5, 0.25, 6});
  EXPECT_FALSE(c.orthorhombic());
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec3 r{rng.uniform(-10, 10), rng.uniform(-10, 10),
                 rng.uniform(-10, 10)};
    const Vec3 back = c.to_cartesian(c.to_fractional(r));
    EXPECT_NEAR(back.x, r.x, 1e-11);
    EXPECT_NEAR(back.y, r.y, 1e-11);
    EXPECT_NEAR(back.z, r.z, 1e-11);
  }
}

TEST(Cell, TriclinicMinimumImageStaysWithinHalfHeights) {
  const Cell c({6, 0, 0}, {2, 7, 0}, {1, 1, 8});
  const auto h = c.heights();
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec3 dr{rng.uniform(-25, 25), rng.uniform(-25, 25),
                  rng.uniform(-25, 25)};
    const Vec3 mi = c.minimum_image(dr);
    const Vec3 s = c.to_fractional(mi);
    EXPECT_LE(std::fabs(s.x), 0.5 + 1e-9);
    EXPECT_LE(std::fabs(s.y), 0.5 + 1e-9);
    EXPECT_LE(std::fabs(s.z), 0.5 + 1e-9);
    (void)h;
  }
}

TEST(Cell, DegenerateLatticeThrows) {
  EXPECT_THROW(Cell({1, 0, 0}, {2, 0, 0}, {0, 0, 1}), Error);
}

TEST(Cell, ShiftVectorIsLatticeCombination) {
  const Cell c({3, 0, 0}, {0, 4, 0}, {0, 0, 5});
  const Vec3 s = c.shift_vector(1, -2, 3);
  EXPECT_EQ(s, (Vec3{3, -8, 15}));
}

}  // namespace
}  // namespace tbmd
