// Tests for the variable-block-row (mixed-tile) mode of BlockSparseMatrix:
// uniform normalization, dense/CSR round trips, algebra against the dense
// reference, symmetric-half storage with frozen-pattern reuse, and the
// rectangular truncation criterion.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/linalg/blas.hpp"
#include "src/onx/block_sparse.hpp"
#include "src/onx/sparse.hpp"
#include "src/util/random.hpp"

namespace tbmd::onx {
namespace {

/// A mixed 1/4/9 layout, the orbital-count triple of an s / sp / spd
/// species mix.
std::vector<std::uint32_t> mixed_dims() { return {4, 1, 9, 4, 1, 9, 4}; }

std::size_t dims_sum(const std::vector<std::uint32_t>& dims) {
  std::size_t n = 0;
  for (const std::uint32_t d : dims) n += d;
  return n;
}

/// Random symmetric matrix whose sparsity pattern is granular in the
/// *variable* tiles of `dims`: a tile is dense or absent as a whole,
/// mirrored across the diagonal.
linalg::Matrix random_var_symmetric(const std::vector<std::uint32_t>& dims,
                                    std::uint64_t seed,
                                    double block_sparsity = 0.5) {
  Rng rng(seed);
  const std::size_t nb = dims.size();
  std::vector<std::size_t> off(nb + 1, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) off[bi + 1] = off[bi] + dims[bi];
  linalg::Matrix m(off[nb], off[nb], 0.0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    for (std::size_t bj = 0; bj <= bi; ++bj) {
      if (bi != bj && rng.uniform() < block_sparsity) continue;
      for (std::size_t r = 0; r < dims[bi]; ++r) {
        for (std::size_t c = 0; c < dims[bj]; ++c) {
          if (bi == bj && c > r) continue;
          const double v = rng.uniform(-1, 1);
          m(off[bi] + r, off[bj] + c) = v;
          m(off[bj] + c, off[bi] + r) = v;
        }
      }
    }
  }
  return m;
}

TEST(BlockSparseVar, UniformDimsNormalizeToUniformMode) {
  const std::vector<std::uint32_t> dims = {4, 4, 4};
  const BlockSparseMatrix m(dims);
  EXPECT_TRUE(m.uniform_blocks());
  EXPECT_EQ(m.block_size(), 4u);
  EXPECT_EQ(m.max_block_size(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_TRUE(m.block_dims().empty());

  const BlockSparseMatrix id = BlockSparseMatrix::identity(dims);
  EXPECT_TRUE(id.uniform_blocks());
  EXPECT_NEAR(id.trace(), 12.0, 1e-15);
}

TEST(BlockSparseVar, MixedLayoutBasics) {
  const auto dims = mixed_dims();
  const BlockSparseMatrix m(dims);
  EXPECT_FALSE(m.uniform_blocks());
  EXPECT_EQ(m.block_size(), 0u);
  EXPECT_EQ(m.max_block_size(), 9u);
  EXPECT_EQ(m.size(), dims_sum(dims));
  EXPECT_EQ(m.block_rows(), dims.size());
  EXPECT_EQ(m.row_dim(2), 9u);
  EXPECT_EQ(m.row_offset(2), 5u);
}

TEST(BlockSparseVar, IdentityAndIdentityLike) {
  const auto dims = mixed_dims();
  const BlockSparseMatrix id = BlockSparseMatrix::identity(dims);
  const std::size_t n = dims_sum(dims);
  EXPECT_NEAR(id.trace(), static_cast<double>(n), 1e-15);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(id.get(i, j), i == j ? 1.0 : 0.0);
    }
  }
  const BlockSparseMatrix half = BlockSparseMatrix::identity(dims, true);
  const BlockSparseMatrix like = BlockSparseMatrix::identity_like(half);
  EXPECT_TRUE(like.symmetric());
  EXPECT_EQ(like.pattern_fingerprint(), half.pattern_fingerprint());
  EXPECT_NEAR(like.trace(), static_cast<double>(n), 1e-15);
}

TEST(BlockSparseVar, DenseRoundTrip) {
  const auto dims = mixed_dims();
  const linalg::Matrix a = random_var_symmetric(dims, 3);
  const BlockSparseMatrix b = BlockSparseMatrix::from_dense(a, dims);
  EXPECT_FALSE(b.uniform_blocks());
  EXPECT_LT(linalg::max_abs(b.to_dense() - a), 1e-15);

  // Entrywise lookup agrees on both triangles.
  for (std::size_t i = 0; i < a.rows(); i += 3) {
    for (std::size_t j = 0; j < a.cols(); j += 2) {
      EXPECT_EQ(b.get(i, j), a(i, j));
    }
  }
}

TEST(BlockSparseVar, HalfStorageRoundTrip) {
  const auto dims = mixed_dims();
  const linalg::Matrix a = random_var_symmetric(dims, 7);
  const BlockSparseMatrix full = BlockSparseMatrix::from_dense(a, dims);
  const BlockSparseMatrix half = full.to_symmetric_half();
  EXPECT_TRUE(half.symmetric());
  EXPECT_LT(half.block_count(), full.block_count());
  EXPECT_LT(linalg::max_abs(half.to_dense() - a), 1e-15);
  const BlockSparseMatrix back = half.to_full();
  EXPECT_FALSE(back.symmetric());
  EXPECT_LT(linalg::max_abs(back.to_dense() - a), 1e-15);
  EXPECT_EQ(back.block_count(), full.block_count());
  // Mirror-aware scalar lookups on the half form.
  for (std::size_t i = 0; i < a.rows(); i += 2) {
    for (std::size_t j = 0; j < a.cols(); j += 3) {
      EXPECT_EQ(half.get(i, j), a(i, j));
    }
  }
}

TEST(BlockSparseVar, CsrRoundTrip) {
  const auto dims = mixed_dims();
  const linalg::Matrix a = random_var_symmetric(dims, 13);
  const SparseMatrix s = SparseMatrix::from_dense(a);
  const BlockSparseMatrix b = s.to_block(dims);
  EXPECT_FALSE(b.uniform_blocks());
  EXPECT_LT(linalg::max_abs(b.to_dense() - a), 1e-15);
  const SparseMatrix back = SparseMatrix::from_block(b);
  EXPECT_LT(linalg::max_abs(back.to_dense() - a), 1e-15);
}

TEST(BlockSparseVar, TraceOfProductMatchesDense) {
  const auto dims = mixed_dims();
  const linalg::Matrix a = random_var_symmetric(dims, 17);
  const linalg::Matrix c = random_var_symmetric(dims, 19);
  const double ref = linalg::trace_of_product(a, c);
  const BlockSparseMatrix ba = BlockSparseMatrix::from_dense(a, dims);
  const BlockSparseMatrix bc = BlockSparseMatrix::from_dense(c, dims);
  EXPECT_NEAR(ba.trace_of_product(bc), ref, 1e-11);
  EXPECT_NEAR(ba.to_symmetric_half().trace_of_product(bc.to_symmetric_half()),
              ref, 1e-11);
}

TEST(BlockSparseVar, CombineMatchesDense) {
  const auto dims = mixed_dims();
  const linalg::Matrix a = random_var_symmetric(dims, 23);
  const linalg::Matrix c = random_var_symmetric(dims, 29);
  const BlockSparseMatrix ba = BlockSparseMatrix::from_dense(a, dims);
  const BlockSparseMatrix bc = BlockSparseMatrix::from_dense(c, dims);
  const BlockSparseMatrix r = ba.combine(1.5, bc, -0.5);
  linalg::Matrix ref(a.rows(), a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ref(i, j) = 1.5 * a(i, j) - 0.5 * c(i, j);
    }
  }
  EXPECT_LT(linalg::max_abs(r.to_dense() - ref), 1e-14);
}

TEST(BlockSparseVar, MultiplyMatchesDenseGemm) {
  const auto dims = mixed_dims();
  const linalg::Matrix a = random_var_symmetric(dims, 31);
  const BlockSparseMatrix ba = BlockSparseMatrix::from_dense(a, dims);
  const BlockSparseMatrix p = ba.multiply(ba);
  const linalg::Matrix ref = linalg::matmul(a, a);
  EXPECT_LT(linalg::max_abs(p.to_dense() - ref), 1e-12);
}

TEST(BlockSparseVar, SymmetricHalfMultiplyMatchesFull) {
  const auto dims = mixed_dims();
  const linalg::Matrix a = random_var_symmetric(dims, 37);
  const BlockSparseMatrix full = BlockSparseMatrix::from_dense(a, dims);
  const BlockSparseMatrix half = full.to_symmetric_half();
  BlockSparseMatrix out;
  BsrWorkspace ws;
  half.multiply_sym_into(half, 0.0, out, ws, nullptr);
  EXPECT_TRUE(out.symmetric());
  const linalg::Matrix ref = linalg::matmul(a, a);
  EXPECT_LT(linalg::max_abs(out.to_dense() - ref), 1e-12);
}

TEST(BlockSparseVar, FrozenPatternReuseIsBitIdentical) {
  const auto dims = mixed_dims();
  const linalg::Matrix a = random_var_symmetric(dims, 41);
  const BlockSparseMatrix half =
      BlockSparseMatrix::from_dense(a, dims).to_symmetric_half();
  BsrWorkspace ws;
  BsrPattern pattern;
  BlockSparseMatrix cold, warm;
  half.multiply_sym_into(half, 1e-8, cold, ws, &pattern);
  EXPECT_EQ(ws.stats.symbolic_builds, 1u);
  half.multiply_sym_into(half, 1e-8, warm, ws, &pattern);
  EXPECT_EQ(ws.stats.symbolic_builds, 1u);
  EXPECT_EQ(ws.stats.numeric_reuses, 1u);
  ASSERT_EQ(warm.values().size(), cold.values().size());
  for (std::size_t q = 0; q < cold.values().size(); ++q) {
    EXPECT_EQ(warm.values()[q], cold.values()[q]);  // bit-identical
  }
}

TEST(BlockSparseVar, RectTruncationDropsSmallTiles) {
  // Two tiles: a 4x9 tile of entries eps/2 must be dropped at tolerance
  // eps (RMS below eps), a tile with one large entry must survive.
  const std::vector<std::uint32_t> dims = {4, 9};
  linalg::Matrix a(13, 13, 0.0);
  const double eps = 1e-6;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 4; c < 13; ++c) {
      a(r, c) = 0.5 * eps;
      a(c, r) = 0.5 * eps;
    }
  }
  a(0, 0) = 1.0;
  a(4, 4) = 1.0;
  const BlockSparseMatrix kept = BlockSparseMatrix::from_dense(a, dims, 0.0);
  EXPECT_EQ(kept.block_count(), 4u);  // two diagonal + both mirrors
  const BlockSparseMatrix trunc =
      BlockSparseMatrix::from_dense(a, dims, eps);
  EXPECT_EQ(trunc.block_count(), 2u);  // diagonal tiles only
}

TEST(BlockSparseVar, GershgorinContainsSpectrumEdges) {
  const auto dims = mixed_dims();
  const linalg::Matrix a = random_var_symmetric(dims, 43);
  const BlockSparseMatrix full = BlockSparseMatrix::from_dense(a, dims);
  const auto bf = full.gershgorin_bounds();
  const auto bh = full.to_symmetric_half().gershgorin_bounds();
  EXPECT_NEAR(bf.lo, bh.lo, 1e-12);
  EXPECT_NEAR(bf.hi, bh.hi, 1e-12);
  // Row sums bound the spectrum: check against the largest |row sum|.
  double max_abs_row = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += std::fabs(a(i, j));
    max_abs_row = std::max(max_abs_row, s);
  }
  EXPECT_GE(bf.hi, -max_abs_row);
  EXPECT_LE(bf.lo, max_abs_row);
}

}  // namespace
}  // namespace tbmd::onx
