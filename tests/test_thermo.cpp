// Tests for the virial tensor and the pressure estimator, validated
// against finite-difference volume derivatives of the total energy.

#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/thermo.hpp"
#include "src/potentials/lennard_jones.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"

namespace tbmd::analysis {
namespace {

/// -dE/dV by central differences: scale the cell and all coordinates
/// isotropically by (1 +- eps) and re-evaluate the energy.
double fd_pressure(Calculator& calc, const System& base, double eps = 2e-4) {
  auto scaled = [&](double factor) {
    System s = base;
    const Mat3& h = base.cell().h();
    s.set_cell(Cell(h.row(0) * factor, h.row(1) * factor, h.row(2) * factor,
                    base.cell().periodic(0), base.cell().periodic(1),
                    base.cell().periodic(2)));
    for (Vec3& r : s.positions()) r *= factor;
    return s;
  };
  System plus = scaled(1.0 + eps);
  System minus = scaled(1.0 - eps);
  const double ep = calc.compute(plus).energy;
  const double em = calc.compute(minus).energy;
  const double v0 = base.cell().volume();
  const double vp = v0 * std::pow(1.0 + eps, 3);
  const double vm = v0 * std::pow(1.0 - eps, 3);
  return -(ep - em) / (vp - vm);
}

TEST(Virial, LennardJonesPressureMatchesVolumeDerivative) {
  System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
  potentials::LennardJonesParams p;
  p.cutoff = 4.8;
  p.skin = 0.0;  // exact cutoff so E(V) is smooth across the FD stencil
  potentials::LennardJonesCalculator calc(p);
  const ForceResult r = calc.compute(s);
  const double p_virial = instantaneous_pressure(s, r);  // KE = 0
  const double p_fd = fd_pressure(calc, s);
  EXPECT_NEAR(p_virial, p_fd, 1e-6);
}

TEST(Virial, LennardJonesSignsFollowCompression) {
  potentials::LennardJonesParams p;
  p.cutoff = 4.5;  // the compressed 9.8 A cell admits a 4.9 A list radius
  p.skin = 0.3;
  potentials::LennardJonesCalculator calc(p);
  // Compressed lattice pushes out (P > 0), stretched pulls in (P < 0).
  System tight = structures::fcc(Element::Ar, 4.9, 2, 2, 2);
  System loose = structures::fcc(Element::Ar, 5.8, 2, 2, 2);
  EXPECT_GT(instantaneous_pressure(tight, calc.compute(tight)), 0.0);
  EXPECT_LT(instantaneous_pressure(loose, calc.compute(loose)), 0.0);
}

TEST(Virial, TightBindingPressureMatchesVolumeDerivative) {
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  structures::perturb(s, 0.02, 7);
  tb::TbOptions opt;
  opt.skin = 0.0;
  tb::TightBindingCalculator calc(tb::gsp_silicon(), opt);
  const ForceResult r = calc.compute(s);
  const double p_virial = instantaneous_pressure(s, r);
  const double p_fd = fd_pressure(calc, s);
  EXPECT_NEAR(p_virial, p_fd, 5e-5);
}

TEST(Virial, TightBindingNearZeroAtEquilibrium) {
  // At the model's equilibrium lattice constant the static pressure ~ 0.
  tb::TightBindingCalculator calc(tb::gsp_silicon());
  System s = structures::diamond(Element::Si, 5.42, 2, 2, 2);
  const double p_gpa = kEvPerA3ToGPa *
                       instantaneous_pressure(s, calc.compute(s));
  EXPECT_LT(std::fabs(p_gpa), 3.0);  // within a few GPa of zero
}

TEST(Virial, TersoffPressureMatchesVolumeDerivative) {
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  structures::perturb(s, 0.03, 9);
  potentials::TersoffParams p = potentials::tersoff_silicon();
  p.skin = 0.0;
  potentials::TersoffCalculator calc(p);
  const ForceResult r = calc.compute(s);
  const double p_virial = instantaneous_pressure(s, r);
  const double p_fd = fd_pressure(calc, s);
  EXPECT_NEAR(p_virial, p_fd, 5e-6);
}

TEST(Virial, CompressionRaisesTbPressureMonotonically) {
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  double prev = -1e300;
  for (const double a : {3.75, 3.65, 3.55, 3.45}) {
    System s = structures::diamond(Element::C, a, 2, 2, 2);
    const double p = instantaneous_pressure(s, calc.compute(s));
    EXPECT_GT(p, prev) << "a = " << a;
    prev = p;
  }
}

TEST(Virial, VirialTensorIsSymmetricForCentralPotentials) {
  potentials::LennardJonesParams p;
  p.cutoff = 4.8;
  p.skin = 0.2;  // keep cutoff+skin inside half the 10.2 A cell
  potentials::LennardJonesCalculator calc(p);
  System s = structures::fcc(Element::Ar, 5.1, 2, 2, 2);
  structures::perturb(s, 0.1, 11);
  const ForceResult r = calc.compute(s);
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      EXPECT_NEAR(r.virial(i, j), r.virial(j, i), 1e-9);
    }
  }
}

TEST(Virial, PressureRequiresPeriodicCell) {
  System cluster = structures::dimer(Element::Ar, 3.8);
  potentials::LennardJonesCalculator calc;
  const ForceResult r = calc.compute(cluster);
  EXPECT_THROW((void)instantaneous_pressure(cluster, r), Error);
}

}  // namespace
}  // namespace tbmd::analysis
