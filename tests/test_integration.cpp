// Cross-module integration tests: complete TBMD workflows exercising the
// public API end to end, mirroring the paper's simulation protocols at
// miniature scale.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/analysis/bonds.hpp"
#include "src/analysis/edos.hpp"
#include "src/analysis/msd.hpp"
#include "src/analysis/rdf.hpp"
#include "src/io/xyz.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/thermostat.hpp"
#include "src/md/velocities.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/relax/relax.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/structures/nanotube.hpp"
#include "src/tb/tb_calculator.hpp"

namespace tbmd {
namespace {

TEST(Workflow, NvtTbmdSiliconStaysCrystallineAt300K) {
  // Canonical MD at room temperature must keep diamond silicon intact:
  // all atoms 4-coordinated, bounded MSD, temperature near target.
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s, 300.0, 1);
  tb::TightBindingCalculator calc(tb::gsp_silicon());
  md::MdOptions opt;
  opt.dt = 1.0;
  opt.thermostat = md::ThermostatSpec::nose_hoover(300.0, 50.0, 2);
  md::MdDriver driver(s, calc, std::move(opt));

  analysis::MsdTracker msd(s);
  driver.run(120);

  EXPECT_LT(msd.msd(s), 0.3);  // thermal wiggle only, no diffusion
  const auto coord = analysis::coordination_numbers(s, 2.8);
  for (const int c : coord) EXPECT_EQ(c, 4);
  EXPECT_GT(s.temperature(), 100.0);
  EXPECT_LT(s.temperature(), 600.0);
}

TEST(Workflow, NveTbmdConservedQuantityTracksPaperCriterion) {
  // The paper monitors the extended-system conserved quantity and reports
  // fluctuations < 1e-4 relative over the run; test the NVE analog.
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s, 500.0, 2);
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  md::MdDriver driver(s, calc, {0.5});

  const double e0 = driver.total_energy();
  double worst = 0.0;
  driver.run(60, [&](const md::MdDriver& d, long) {
    worst = std::max(worst, std::fabs(d.total_energy() - e0));
  });
  EXPECT_LT(worst / std::fabs(e0), 1e-4);
}

TEST(Workflow, GrapheneSheetSurvivesRoomTemperatureMd) {
  System s = structures::graphene(Element::C, 1.42, 3, 2);
  md::maxwell_boltzmann_velocities(s, 300.0, 3);
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  md::MdOptions opt;
  opt.dt = 1.0;
  opt.thermostat = md::ThermostatSpec::nose_hoover(300.0, 50.0, 2);
  md::MdDriver driver(s, calc, std::move(opt));
  driver.run(100);
  const auto coord = analysis::coordination_numbers(s, 1.75);
  for (const int c : coord) EXPECT_EQ(c, 3);  // honeycomb intact
}

TEST(Workflow, RelaxThenMdRoundTripThroughXyz) {
  // relax -> write -> read -> MD: the full pipeline a user would run.
  System s = structures::c60();
  structures::perturb(s, 0.05, 4);
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  relax::RelaxOptions ropt;
  ropt.force_tolerance = 2e-2;
  ropt.max_iterations = 2000;
  const auto rr = relax::fire_relax(s, calc, ropt);
  ASSERT_TRUE(rr.converged);

  std::stringstream ss;
  io::write_xyz(ss, s, "relaxed c60");
  System loaded;
  ASSERT_TRUE(io::read_xyz(ss, loaded));

  md::maxwell_boltzmann_velocities(loaded, 300.0, 5);
  tb::TightBindingCalculator calc2(tb::xwch_carbon());
  md::MdDriver driver(loaded, calc2, {1.0});
  driver.run(30);
  EXPECT_EQ(analysis::bond_count(loaded, 1.44 * 1.15), 90u);  // cage intact
}

TEST(Workflow, FrozenEdgeNanotubeMd) {
  // The paper-era trick of freezing one tube end during MD: frozen atoms
  // must stay exactly put while the free end thermalizes.
  System s = structures::nanotube(Element::C, 8, 0, 1.42, 2, false);
  // Freeze the bottom ring (z < 0.5).
  std::vector<Vec3> frozen_pos;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.positions()[i].z < 0.5) {
      s.set_frozen(i, true);
      frozen_pos.push_back(s.positions()[i]);
    }
  }
  ASSERT_FALSE(frozen_pos.empty());

  md::maxwell_boltzmann_velocities(s, 500.0, 6);
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  md::MdOptions opt;
  opt.dt = 1.0;
  opt.thermostat = md::ThermostatSpec::nose_hoover(500.0, 40.0, 2);
  md::MdDriver driver(s, calc, std::move(opt));
  driver.run(60);

  std::size_t q = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.frozen(i)) {
      EXPECT_EQ(s.positions()[i], frozen_pos[q++]);
    }
  }
}

TEST(Workflow, ElectronicStructureOfGrapheneVsDiamond) {
  // Diamond is a wide-gap insulator in the TB model; graphene's pi system
  // closes most of that gap.  The gap ordering must come out right.
  tb::TightBindingCalculator calc(tb::xwch_carbon());

  System diamond = structures::diamond(Element::C, 3.567, 2, 2, 2);
  const auto rd = calc.compute(diamond);
  const double gap_diamond =
      analysis::homo_lumo_gap(rd.eigenvalues, diamond.total_valence_electrons());

  System graphene = structures::graphene(Element::C, 1.42, 3, 3);
  const auto rg = calc.compute(graphene);
  const double gap_graphene = analysis::homo_lumo_gap(
      rg.eigenvalues, graphene.total_valence_electrons());

  EXPECT_GT(gap_diamond, 1.5);           // insulating
  EXPECT_LT(gap_graphene, gap_diamond);  // semimetallic-ish sampling
}

TEST(Workflow, OrderNMdMatchesExactMdShortRun) {
  // Run the same NVE trajectory with exact diagonalization and with O(N)
  // purification forces; they must agree closely for a gapped system.
  System s1 = structures::diamond(Element::C, 3.567, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s1, 300.0, 7);
  System s2 = s1;

  tb::TightBindingCalculator exact(tb::xwch_carbon());
  onx::OrderNOptions oopt;
  oopt.purification.drop_tolerance = 1e-9;
  onx::OrderNCalculator fast(tb::xwch_carbon(), oopt);

  md::MdDriver d1(s1, exact, {1.0});
  md::MdDriver d2(s2, fast, {1.0});
  d1.run(10);
  d2.run(10);

  double worst = 0.0;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    worst = std::max(worst, norm(s1.positions()[i] - s2.positions()[i]));
  }
  EXPECT_LT(worst, 1e-4);  // trajectories track each other
}

TEST(Workflow, TersoffAndTbAgreeOnSiliconEquilibrium) {
  // Independent models must both identify the diamond lattice constant of
  // silicon within a few percent -- a cross-validation of both engines.
  auto minimum_of = [](Calculator& calc) {
    double best_a = 0.0, best_e = 1e300;
    for (double a = 5.2; a <= 5.7; a += 0.05) {
      System s = structures::diamond(Element::Si, a, 2, 2, 2);
      const double e = calc.compute(s).energy;
      if (e < best_e) {
        best_e = e;
        best_a = a;
      }
    }
    return best_a;
  };
  potentials::TersoffCalculator tersoff(potentials::tersoff_silicon());
  tb::TightBindingCalculator tbc(tb::gsp_silicon());
  EXPECT_NEAR(minimum_of(tersoff), minimum_of(tbc), 0.15);
}

TEST(Workflow, PartialSpectrumReproducesFullSolverEnergiesAndForces) {
  // The occupied-states-only diagonalization path must be physically
  // indistinguishable from the full solver: same energies, forces, Fermi
  // level -- at zero and at finite electronic temperature.
  System s = structures::diamond(Element::C, 3.567, 2, 2, 2);
  structures::perturb(s, 0.03, 12);

  for (const double etemp : {0.0, 1000.0}) {
    tb::TbOptions full_opt;
    full_opt.electronic_temperature = etemp;
    full_opt.spectrum = tb::SpectrumMode::kFull;
    tb::TightBindingCalculator full(tb::xwch_carbon(), full_opt);

    tb::TbOptions part_opt;
    part_opt.electronic_temperature = etemp;
    part_opt.report_eigenvalues = false;
    part_opt.spectrum = tb::SpectrumMode::kPartial;
    tb::TightBindingCalculator part(tb::xwch_carbon(), part_opt);

    const auto rf = full.compute(s);
    const auto rp = part.compute(s);

    EXPECT_NEAR(rp.energy, rf.energy, 1e-8) << "etemp = " << etemp;
    EXPECT_NEAR(rp.band_energy, rf.band_energy, 1e-8) << "etemp = " << etemp;
    EXPECT_NEAR(rp.fermi_level, rf.fermi_level, 1e-8) << "etemp = " << etemp;
    ASSERT_EQ(rp.forces.size(), rf.forces.size());
    for (std::size_t i = 0; i < rf.forces.size(); ++i) {
      EXPECT_LT(norm(rp.forces[i] - rf.forces[i]), 1e-8)
          << "atom " << i << ", etemp = " << etemp;
    }
  }

  // kAuto with report_eigenvalues = false engages the partial path too and
  // must agree with the default full-spectrum configuration.
  tb::TbOptions auto_opt;
  auto_opt.report_eigenvalues = false;
  tb::TightBindingCalculator autoc(tb::xwch_carbon(), auto_opt);
  tb::TightBindingCalculator deflt(tb::xwch_carbon());
  const auto ra = autoc.compute(s);
  const auto rd = deflt.compute(s);
  EXPECT_NEAR(ra.energy, rd.energy, 1e-8);
  EXPECT_TRUE(ra.eigenvalues.empty());
  EXPECT_EQ(rd.eigenvalues.size(), static_cast<std::size_t>(4 * s.size()));
}

TEST(Workflow, HeatingRampRaisesTemperature) {
  // The paper's 0.5 K/fs thermostat ramp protocol, at miniature scale.
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s, 300.0, 8);
  tb::TightBindingCalculator calc(tb::gsp_silicon());
  md::MdOptions opt;
  opt.dt = 1.0;
  opt.thermostat = md::ThermostatSpec::nose_hoover(300.0, 30.0, 2);
  md::MdDriver driver(s, calc, std::move(opt));

  // Ramp 300 K -> 400 K over 200 fs (0.5 K/fs).
  driver.ramp_temperature(400.0, 200);
  EXPECT_NEAR(driver.thermostat()->target(), 400.0, 1e-9);
  // Let the lagging system settle at the new target, then average:
  // instantaneous T fluctuates by ~T*sqrt(2/3N) ~ 40 K here.
  driver.run(100);
  double t_acc = 0.0;
  driver.run(120, [&](const md::MdDriver& d, long) {
    t_acc += d.system().temperature();
  });
  EXPECT_GT(t_acc / 120.0, 315.0);
}

}  // namespace
}  // namespace tbmd
