/// \file au_gate.cpp
/// \brief CI gate for the spd Au model (kirchhoff-gold): a short fcc-Au NVE
/// slice on the exact-diagonalization path with Fermi-Dirac smearing, plus
/// a vacancy-formation-energy sanity check, with hard bounds and a nonzero
/// exit code on violation.
///
/// Run by the `on-accuracy` workflow job after on_nve_gate; this program
/// *asserts*:
///   1. fcc Au at the experimental lattice constant is mechanically stable:
///      the unrelaxed vacancy formation energy
///        E_f = E(N-1, vacancy) - (N-1)/N * E(N, bulk)
///      is positive and below an upper sanity bound.
///   2. NVE drift of the conserved quantity (kinetic + Mermin free energy,
///      the invariant of MD with smeared occupations) over the slice stays
///      <= drift_bound (eV/atom), measured as max deviation from the
///      initial total.
///
/// Usage: au_gate [--cells 3] [--steps 20] [--dt 2.0] [--temp 300]
///                [--tel 300] [--drift-bound 2e-3]
///                [--ef-min 0.05] [--ef-max 5.0]
/// Writes au_gate.csv (per-step energies) for the artifact upload.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "src/io/table.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/tb/tb_model.hpp"

namespace {

double arg_or(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tbmd;

  const int cells = static_cast<int>(arg_or(argc, argv, "--cells", 3));
  const long steps = static_cast<long>(arg_or(argc, argv, "--steps", 20));
  const double dt = arg_or(argc, argv, "--dt", 2.0);
  const double temp = arg_or(argc, argv, "--temp", 300.0);
  const double tel = arg_or(argc, argv, "--tel", 300.0);
  const double drift_bound = arg_or(argc, argv, "--drift-bound", 2e-3);
  const double ef_min = arg_or(argc, argv, "--ef-min", 0.05);
  const double ef_max = arg_or(argc, argv, "--ef-max", 5.0);

  const double a0 = 4.08;  // experimental fcc Au lattice constant (A)
  const tb::TbModel model = tb::kirchhoff_gold();
  tb::TbOptions opt;
  opt.electronic_temperature = tel;
  opt.report_eigenvalues = false;

  System bulk = structures::fcc(Element::Au, a0, cells, cells, cells);
  const double n = static_cast<double>(bulk.size());
  std::printf("Au gate: %zu-atom fcc (a = %.3f A), %ld NVE steps @ %.2f fs, "
              "T0 = %.0f K, T_el = %.0f K\n\n",
              bulk.size(), a0, steps, dt, temp, tel);

  // --- 1: unrelaxed vacancy formation energy -----------------------------
  // Metals must pay energy to remove an atom; a negative E_f would mean the
  // parameterization's band/repulsion balance is broken (the failure mode
  // of an uncalibrated phi0).
  double e_f = 0.0;
  {
    tb::TightBindingCalculator calc(model, opt);
    const double e_bulk = calc.compute(bulk).energy;
    const System vac = structures::with_vacancy(bulk, 0);
    tb::TightBindingCalculator calc_vac(model, opt);
    const double e_vac = calc_vac.compute(vac).energy;
    e_f = e_vac - (n - 1.0) / n * e_bulk;
    std::printf("  E(bulk)         : %12.4f eV (%g atoms)\n", e_bulk, n);
    std::printf("  E(vacancy)      : %12.4f eV (%g atoms)\n", e_vac, n - 1.0);
    std::printf("  E_f (unrelaxed) : %12.4f eV   (bounds [%.2f, %.2f])\n\n",
                e_f, ef_min, ef_max);
  }

  // --- 2: NVE conservation slice (exact path, smeared occupations) -------
  structures::perturb(bulk, 0.03, 17);
  md::maxwell_boltzmann_velocities(bulk, temp, 9);
  tb::TightBindingCalculator calc(model, opt);
  io::Table table({"step", "time_fs", "total_eV", "potential_eV",
                   "kinetic_eV", "drift_eV_atom"});
  md::MdDriver driver(bulk, calc, {dt});
  const double e0 = driver.total_energy();
  double worst_drift = 0.0;
  driver.run(steps, [&](const md::MdDriver& d, long step) {
    const double total = d.total_energy();
    const double drift = std::fabs(total - e0) / n;
    worst_drift = std::max(worst_drift, drift);
    table.add_numeric_row(
        {static_cast<double>(step), d.time_fs(), total, d.last_result().energy,
         d.system().kinetic_energy(), drift},
        6);
  });

  table.print(std::cout);
  table.write_csv("au_gate.csv");
  std::printf("\n  max NVE drift   : %10.3e eV/atom (bound %.1e)\n",
              worst_drift, drift_bound);

  // --- verdict ------------------------------------------------------------
  bool ok = true;
  auto check = [&](bool pass, const char* what) {
    std::printf("  [%s] %s\n", pass ? "ok" : "FAIL", what);
    ok &= pass;
  };
  std::printf("\n");
  check(e_f >= ef_min && e_f <= ef_max, "vacancy formation energy in bounds");
  check(worst_drift <= drift_bound, "NVE conserved-energy drift");
  return ok ? 0 : 1;
}
