/// \file exp_t3_on_accuracy.cpp
/// \brief EXP-T3 -- Table 3: O(N) purification accuracy and cost versus
/// exact diagonalization.
///
/// Sweeps the truncation threshold of the Palser-Manolopoulos canonical
/// purification on diamond carbon and reports the band-energy error per
/// atom, iteration count, density-matrix fill and wall time, against the
/// exact O(N^3) result.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/io/table.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/onx/purification.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace tbmd;
  std::printf("EXP-T3: O(N) purification accuracy vs exact diagonalization\n\n");

  const tb::TbModel model = tb::xwch_carbon();
  io::Table table({"N_atoms", "drop_tol", "dE_band_meV_atom", "iterations",
                   "fill_fraction", "t_purify_ms", "t_diag_ms"});

  for (const int nx : {2, 3}) {
    System s = structures::diamond(Element::C, 3.567, nx, nx, nx);
    structures::perturb(s, 0.02, 13);
    NeighborList list;
    list.build(s.positions(), s.cell(), {model.cutoff(), 0.3});
    const linalg::Matrix hd = tb::build_hamiltonian(model, s, list);
    const onx::SparseMatrix hs = onx::SparseMatrix::from_dense(hd);
    const int nocc = s.total_valence_electrons() / 2;

    WallTimer diag_timer;
    const auto vals = linalg::eigvalsh(hd);
    const double t_diag = diag_timer.seconds() * 1000.0;
    const auto occ = tb::occupy(vals, s.total_valence_electrons(), 0.0);

    for (const double drop : {1e-4, 1e-5, 1e-6, 1e-7, 1e-8}) {
      onx::PurificationOptions opt;
      opt.drop_tolerance = drop;
      WallTimer pm_timer;
      const auto pm = onx::palser_manolopoulos(hs, nocc, opt);
      const double t_pm = pm_timer.seconds() * 1000.0;
      const double err_mev =
          1000.0 * std::fabs(pm.band_energy - occ.band_energy) /
          static_cast<double>(s.size());
      table.add_numeric_row({static_cast<double>(s.size()), drop, err_mev,
                             static_cast<double>(pm.iterations),
                             pm.fill_fraction, t_pm, t_diag},
                            4);
    }
    std::printf("  measured N = %zu\n", s.size());
  }

  std::printf("\n");
  table.print(std::cout);
  table.write_csv("exp_t3_on_accuracy.csv");
  std::printf("\nExpected shape: error decreases monotonically with drop_tol;\n"
              "fill fraction (and hence cost) grows as the threshold tightens;\n"
              "for the larger cell the fill is lower at equal tolerance\n"
              "(nearsightedness -> O(N) regime).\n");
  return 0;
}
