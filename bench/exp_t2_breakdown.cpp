/// \file exp_t2_breakdown.cpp
/// \brief EXP-T2 -- Table 2: per-phase wall-clock breakdown of one TBMD
/// step vs system size.
///
/// The signature table of an SC'94 TBMD paper: where does the time go?
/// The diagonalization share must grow towards 100% as N grows (O(N^3)
/// against O(N) for every other phase).

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "src/io/table.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"

int main() {
  using namespace tbmd;
  std::printf("EXP-T2: per-phase wall-clock breakdown of a TBMD step\n\n");

  struct CellSpec {
    int nx, ny, nz;
  };
  const std::vector<CellSpec> cells{{2, 2, 2}, {2, 2, 4}, {3, 3, 3}, {3, 3, 4}};

  io::Table table({"N_atoms", "neighbors_ms", "bondtable_ms", "H_build_ms",
                   "diag_ms", "density_ms", "forces_ms", "repulsive_ms",
                   "total_ms", "diag_share_pct"});

  for (const auto& spec : cells) {
    System s = structures::diamond(Element::C, 3.567, spec.nx, spec.ny,
                                   spec.nz);
    md::maxwell_boltzmann_velocities(s, 300.0, 7);
    tb::TightBindingCalculator calc(tb::xwch_carbon());
    md::MdDriver driver(s, calc, {1.0});

    calc.phase_timers().reset();
    const int steps = 3;
    driver.run(steps);

    const auto& t = calc.phase_timers();
    auto ms = [&](const char* phase) {
      return 1000.0 * t.seconds(phase) / steps;
    };
    const double total = 1000.0 * t.total() / steps;
    table.add_numeric_row(
        {static_cast<double>(s.size()), ms("neighbors"), ms("bondtable"),
         ms("hamiltonian"), ms("diagonalize"), ms("density"), ms("forces"),
         ms("repulsive"), total, 100.0 * ms("diagonalize") / total},
        4);
    std::printf("  measured N = %zu\n", s.size());
  }

  std::printf("\n");
  table.print(std::cout);
  table.write_csv("exp_t2_breakdown.csv");
  std::printf("\nExpected shape: diag_share_pct grows monotonically with N\n"
              "(O(N^3) diagonalization vs O(N) everything else).\n");
  return 0;
}
