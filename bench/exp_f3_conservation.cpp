/// \file exp_f3_conservation.cpp
/// \brief EXP-F3 -- Figure 3: energy conservation of the integrators.
///
/// (a) NVE total-energy drift and RMS fluctuation vs timestep for TBMD
///     silicon (velocity Verlet is 2nd order: fluctuation ~ dt^2).
/// (b) Nose-Hoover conserved quantity of the extended system over a
///     canonical run -- the paper's "< 1 part in 10^4" criterion.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "src/io/table.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/thermostat.hpp"
#include "src/md/velocities.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"

int main() {
  using namespace tbmd;
  std::printf("EXP-F3: energy conservation (NVE sweep + NVT conserved "
              "quantity)\n\n");

  io::Table nve({"dt_fs", "steps", "drift_meV_per_atom_ps",
                 "rms_fluct_meV_atom", "rel_fluct"});

  const double total_time_fs = 100.0;
  for (const double dt : {0.25, 0.5, 1.0, 2.0}) {
    System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
    md::maxwell_boltzmann_velocities(s, 300.0, 21);
    tb::TightBindingCalculator calc(tb::gsp_silicon());
    md::MdDriver driver(s, calc, {dt});

    const double e0 = driver.total_energy();
    const long steps = static_cast<long>(total_time_fs / dt);
    double sum = 0.0, sum2 = 0.0;
    driver.run(steps, [&](const md::MdDriver& d, long) {
      const double de = d.total_energy() - e0;
      sum += de;
      sum2 += de * de;
    });
    const double mean = sum / steps;
    const double rms = std::sqrt(std::max(0.0, sum2 / steps - mean * mean));
    const double drift =
        (driver.total_energy() - e0) / s.size() / (total_time_fs / 1000.0);
    nve.add_numeric_row({dt, static_cast<double>(steps), 1000.0 * drift,
                         1000.0 * rms / s.size(), rms / std::fabs(e0)},
                        4);
    std::printf("  measured dt = %.2f fs\n", dt);
  }
  std::printf("\nNVE (velocity Verlet, Si64, TBMD, 100 fs):\n");
  nve.print(std::cout);
  nve.write_csv("exp_f3_nve.csv");

  // --- NVT conserved quantity ---
  std::printf("\nNVT (Nose-Hoover chain, Si64, 300 K, dt = 1 fs):\n");
  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s, 300.0, 23);
  tb::TightBindingCalculator calc(tb::gsp_silicon());
  md::MdOptions opt;
  opt.dt = 1.0;
  opt.thermostat = md::ThermostatSpec::nose_hoover(300.0, 50.0, 2);
  md::MdDriver driver(s, calc, std::move(opt));

  const double h0 = driver.conserved_quantity();
  double worst = 0.0;
  io::Table nvt({"time_fs", "T_K", "conserved_eV", "rel_deviation"});
  driver.run(150, [&](const md::MdDriver& d, long step) {
    const double h = d.conserved_quantity();
    worst = std::max(worst, std::fabs(h - h0));
    if (step % 25 == 0) {
      nvt.add_numeric_row({d.time_fs(), d.system().temperature(), h,
                           (h - h0) / std::fabs(h0)},
                          6);
    }
  });
  nvt.print(std::cout);
  nvt.write_csv("exp_f3_nvt.csv");
  std::printf("\nworst |dH|/|H| = %.2e  (paper criterion: < 1e-4)\n",
              worst / std::fabs(h0));
  std::printf("Expected shape: NVE rms fluctuation scales ~dt^2; NVT\n"
              "conserved quantity stays within 1e-4 relative.\n");
  return 0;
}
