/// \file bench_kernels.cpp
/// \brief EXP-B1 -- google-benchmark microbenchmarks of the hot kernels:
/// eigensolver, Householder reduction, GEMM, Hamiltonian assembly,
/// neighbor-list build, bond-table build, Hellmann-Feynman forces,
/// density matrix, Tersoff step, sparse multiply, Slater-Koster block
/// evaluation.

#include <benchmark/benchmark.h>

#include <cmath>

#include "src/linalg/blas.hpp"
#include "src/linalg/blocked_tridiag.hpp"
#include "src/linalg/eigen_partial.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/onx/sparse.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/bond_table.hpp"
#include "src/tb/density_matrix.hpp"
#include "src/tb/forces.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/tb/occupations.hpp"
#include "src/tb/slater_koster.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/random.hpp"

namespace {

using namespace tbmd;

/// Cubic diamond supercell with the requested atom count (8 atoms per
/// conventional cell, so `atoms` must be 8 * nx^3: 64, 216, 512, ...).
System diamond_with_atoms(Element e, double a, std::int64_t atoms) {
  const int nx = static_cast<int>(std::lround(std::cbrt(atoms / 8.0)));
  return structures::diamond(e, a, nx, nx, nx);
}

linalg::Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1, 1);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

void BM_Eigh(benchmark::State& state) {
  const auto a = random_symmetric(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigh(a));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Eigh)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNCubed);

void BM_EighPartial(benchmark::State& state) {
  // The TBMD hot-path query: the occupied half of the spectrum (Ne/2 of N
  // states at half filling) plus the LUMO, eigenvectors included.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_symmetric(n, 1);
  const std::size_t iu = n / 2;  // states 0 .. N/2 (occupied + LUMO)
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigh_range(a, 0, iu));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EighPartial)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNCubed);

void BM_EighPartialWindow(benchmark::State& state) {
  // Narrow interior window (band-edge style query): 16 states around the
  // middle of the spectrum; exercises the Sturm-bisection value path.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_symmetric(n, 1);
  const std::size_t il = n / 2 - 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigh_range(a, il, il + 15));
  }
}
BENCHMARK(BM_EighPartialWindow)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BlockedTridiag(benchmark::State& state) {
  const auto a = random_symmetric(state.range(0), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::blocked_tridiagonalize(a));
  }
}
BENCHMARK(BM_BlockedTridiag)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_Eigvalsh(benchmark::State& state) {
  const auto a = random_symmetric(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigvalsh(a));
  }
}
BENCHMARK(BM_Eigvalsh)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_Gemm(benchmark::State& state) {
  const auto a = random_symmetric(state.range(0), 3);
  const auto b = random_symmetric(state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::matmul(a, b));
  }
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BuildHamiltonian(benchmark::State& state) {
  // Dense assembly from the prebuilt bond table (the step-pipeline cost;
  // the shared block evaluation itself is measured by BM_BondTable).
  const int nx = state.range(0);
  System s = structures::diamond(Element::C, 3.567, nx, nx, nx);
  const tb::TbModel m = tb::xwch_carbon();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb::build_hamiltonian(m, s, table));
  }
  state.counters["atoms"] = static_cast<double>(s.size());
}
BENCHMARK(BM_BuildHamiltonian)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_NeighborBuild(benchmark::State& state) {
  System s = structures::random_gas(Element::Ar, state.range(0), 0.02, 1.5, 5);
  NeighborList list;
  for (auto _ : state) {
    list.build(s.positions(), s.cell(), {3.0, 0.3});
    benchmark::DoNotOptimize(list.half_pairs().size());
  }
}
BENCHMARK(BM_NeighborBuild)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_BondTable(benchmark::State& state) {
  // The batched per-step evaluation pass: every half pair's SK block,
  // derivative and repulsive radial in one sweep.  Arg = atom count.
  System s = diamond_with_atoms(Element::C, 3.567, state.range(0));
  structures::perturb(s, 0.02, 7);
  const tb::TbModel m = tb::xwch_carbon();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  for (auto _ : state) {
    table.build(m, s, list, tb::BondTable::Mode::kBlocksAndDerivatives);
    benchmark::DoNotOptimize(table.derivative(table.size() - 1, 2)[15]);
  }
  state.counters["bonds"] = static_cast<double>(table.size());
}
BENCHMARK(BM_BondTable)->Arg(64)->Arg(216)->Unit(benchmark::kMillisecond);

void BM_BandForces(benchmark::State& state) {
  // Hellmann-Feynman contraction from the prebuilt bond table (the
  // per-step hot path: the table itself is shared with the Hamiltonian
  // assembly and the repulsive term, and is benchmarked by BM_BondTable).
  // Arg = atom count.
  System s = diamond_with_atoms(Element::C, 3.567, state.range(0));
  structures::perturb(s, 0.02, 7);
  const tb::TbModel m = tb::xwch_carbon();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocksAndDerivatives);
  const auto h = tb::build_hamiltonian(m, s, table);
  const auto eig = linalg::eigh(h);
  const auto occ = tb::occupy(eig.values, s.total_valence_electrons(), 0.0);
  const auto rho = tb::density_matrix(eig.vectors, occ.weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb::band_forces(table, rho));
  }
  state.counters["atoms"] = static_cast<double>(s.size());
}
BENCHMARK(BM_BandForces)->Arg(64)->Arg(216)->Unit(benchmark::kMillisecond);

void BM_DensityMatrix(benchmark::State& state) {
  // Arg = orbital count (4 per atom): 256 -> the 64-atom diamond cell.
  System s = diamond_with_atoms(Element::C, 3.567, state.range(0) / 4);
  const tb::TbModel m = tb::xwch_carbon();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const auto eig = linalg::eigh(tb::build_hamiltonian(m, s, list));
  const auto occ = tb::occupy(eig.values, s.total_valence_electrons(), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb::density_matrix(eig.vectors, occ.weights));
  }
}
BENCHMARK(BM_DensityMatrix)->Arg(256)->Arg(864)->Unit(benchmark::kMillisecond);

void BM_TersoffForceCall(benchmark::State& state) {
  const int nx = state.range(0);
  System s = structures::diamond(Element::Si, 5.431, nx, nx, nx);
  structures::perturb(s, 0.05, 9);
  potentials::TersoffCalculator calc(potentials::tersoff_silicon());
  (void)calc.compute(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.compute(s).energy);
  }
  state.counters["atoms"] = static_cast<double>(s.size());
}
BENCHMARK(BM_TersoffForceCall)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SparseMultiply(benchmark::State& state) {
  const int nx = state.range(0);
  System s = structures::diamond(Element::C, 3.567, nx, nx, nx);
  const tb::TbModel m = tb::xwch_carbon();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  const auto h = onx::build_sparse_hamiltonian(m, s, list);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.multiply(h, 1e-8).nnz());
  }
}
BENCHMARK(BM_SparseMultiply)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_BsrSpMM(benchmark::State& state) {
  // Full-pattern blocked-sparse H * H on the 4x4-tiled Hamiltonian.
  // Compare with BM_SparseMultiply/3 (the same 216-atom product on scalar
  // CSR) and BM_BsrSpMMSym (the symmetric-half production kernel).
  // Arg = atom count.
  System s = diamond_with_atoms(Element::C, 3.567, state.range(0));
  const tb::TbModel m = tb::xwch_carbon();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);
  const onx::BlockSparseMatrix h =
      onx::build_block_hamiltonian(m, s, table).to_full();
  onx::BlockSparseMatrix out;
  onx::BsrWorkspace ws;
  for (auto _ : state) {
    h.multiply_into(h, 1e-8, out, ws);
    benchmark::DoNotOptimize(out.nnz());
  }
  state.counters["blocks"] = static_cast<double>(h.block_count());
}
BENCHMARK(BM_BsrSpMM)->Arg(64)->Arg(216)->Unit(benchmark::kMillisecond);

void BM_BsrSpMMSym(benchmark::State& state) {
  // Symmetric-half H * H with a warm frozen pattern -- the steady-state
  // SpMM of the purification loop: upper-triangle tiles only (half the
  // tile products of BM_BsrSpMM) and zero symbolic-phase work after the
  // first iteration.  Arg = atom count.
  System s = diamond_with_atoms(Element::C, 3.567, state.range(0));
  const tb::TbModel m = tb::xwch_carbon();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);
  const onx::BlockSparseMatrix h = onx::build_block_hamiltonian(m, s, table);
  onx::BlockSparseMatrix out;
  onx::BsrWorkspace ws;
  onx::BsrPattern pattern;
  h.multiply_sym_into(h, 1e-8, out, ws, &pattern);  // cold symbolic build
  for (auto _ : state) {
    h.multiply_sym_into(h, 1e-8, out, ws, &pattern);
    benchmark::DoNotOptimize(out.nnz());
  }
  state.counters["blocks"] = static_cast<double>(h.block_count());
  state.counters["symbolic"] = static_cast<double>(ws.stats.symbolic_builds);
}
BENCHMARK(BM_BsrSpMMSym)->Arg(64)->Arg(216)->Unit(benchmark::kMillisecond);

void BM_BsrSpMMSym_f32(benchmark::State& state) {
  // The fp32 twin of BM_BsrSpMMSym: the same warm symmetric-half H * H on
  // fp32 tiles -- the SpMM the mixed-precision purification loop runs in
  // its loose-early iterations.  Half the memory traffic plus twice the
  // SIMD lanes where the numeric sweep is bandwidth-bound; the acceptance
  // gate asks for >= 1.3x over BM_BsrSpMMSym at the same atom count.
  // Arg = atom count.
  System s = diamond_with_atoms(Element::C, 3.567, state.range(0));
  const tb::TbModel m = tb::xwch_carbon();
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);
  const onx::BlockSparseMatrix h = onx::build_block_hamiltonian(m, s, table)
                                       .to_precision(onx::TilePrecision::kF32);
  onx::BlockSparseMatrix out;
  onx::BsrWorkspace ws;
  onx::BsrPattern pattern;
  h.multiply_sym_into(h, 1e-8, out, ws, &pattern);  // cold symbolic build
  for (auto _ : state) {
    h.multiply_sym_into(h, 1e-8, out, ws, &pattern);
    benchmark::DoNotOptimize(out.nnz());
  }
  state.counters["blocks"] = static_cast<double>(h.block_count());
  state.counters["symbolic"] = static_cast<double>(ws.stats.symbolic_builds);
}
BENCHMARK(BM_BsrSpMMSym_f32)->Arg(216)->Unit(benchmark::kMillisecond);

void BM_BsrSpMMSym_spd(benchmark::State& state) {
  // Symmetric-half SpMM on a *mixed* block layout: fcc Au (9x9 spd tiles)
  // with every 4th site substituted by an s-only impurity, so the product
  // exercises the 9x9 unrolled micro-kernel, the generic rectangular path
  // (1x9 / 9x1 tiles) and the variable-layout symbolic machinery at once.
  // Arg = fcc cells per edge (3 -> 108 atoms, 4 -> 256 atoms; 2 cells
  // would undercut the 2*(r_cut+skin) minimum image height).
  const int nx = static_cast<int>(state.range(0));
  tb::TbModel m = tb::kirchhoff_gold();
  {
    const tb::PairParams au_au = m.pair(0, 0);
    tb::SpeciesParams au = m.species[0];
    tb::SpeciesParams h;
    h.element = Element::H;
    h.orbitals = 1;
    h.e_s = -6.0;
    m.set_species({au, h});
    m.set_pair(0, 0, au_au);
    tb::PairParams au_h;
    au_h.integrals.sss = -1.0;
    au_h.integrals.pss = -1.3;
    au_h.integrals.dss = -0.5;
    au_h.hopping = au_au.hopping;
    au_h.phi0 = au_au.phi0;
    au_h.repulsive = au_au.repulsive;
    m.set_pair(0, 1, au_h);
    tb::PairParams h_h;
    h_h.integrals.sss = -0.8;
    h_h.hopping = au_au.hopping;
    h_h.phi0 = au_au.phi0;
    h_h.repulsive = au_au.repulsive;
    m.set_pair(1, 1, h_h);
  }
  System s = structures::fcc(Element::Au, 4.08, nx, nx, nx);
  std::vector<std::size_t> sites;
  for (std::size_t i = 0; i < s.size(); i += 4) sites.push_back(i);
  structures::substitute(s, sites, Element::H);
  structures::perturb(s, 0.02, 7);
  NeighborList list;
  list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
  tb::BondTable table;
  table.build(m, s, list, tb::BondTable::Mode::kBlocks);
  const onx::BlockSparseMatrix h = onx::build_block_hamiltonian(m, s, table);
  onx::BlockSparseMatrix out;
  onx::BsrWorkspace ws;
  onx::BsrPattern pattern;
  h.multiply_sym_into(h, 1e-8, out, ws, &pattern);  // cold symbolic build
  for (auto _ : state) {
    h.multiply_sym_into(h, 1e-8, out, ws, &pattern);
    benchmark::DoNotOptimize(out.nnz());
  }
  state.counters["atoms"] = static_cast<double>(s.size());
  state.counters["blocks"] = static_cast<double>(h.block_count());
}
BENCHMARK(BM_BsrSpMMSym_spd)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_TbOnStep(benchmark::State& state) {
  // Full O(N) force call (bond table, BSR assembly, PM purification on the
  // blocked substrate, blocked force contraction) at the exp_f1 production
  // tolerance.  Arg = atom count.
  System s = diamond_with_atoms(Element::C, 3.567, state.range(0));
  structures::perturb(s, 0.02, 3);
  onx::OrderNOptions opt;
  opt.purification.drop_tolerance = 1e-6;
  onx::OrderNCalculator calc(tb::xwch_carbon(), opt);
  (void)calc.compute(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.compute(s).energy);
  }
  state.counters["atoms"] = static_cast<double>(s.size());
}
BENCHMARK(BM_TbOnStep)->Arg(64)->Arg(216)->Unit(benchmark::kMillisecond);

void BM_SkBlockWithDerivative(benchmark::State& state) {
  const tb::TbModel m = tb::xwch_carbon();
  const Vec3 bond{0.8, 0.9, 0.7};
  tb::SkBlock block;
  tb::SkBlockDerivative deriv;
  for (auto _ : state) {
    tb::sk_block_with_derivative(m, bond, block, deriv);
    benchmark::DoNotOptimize(deriv.d[2][3][3]);
  }
}
BENCHMARK(BM_SkBlockWithDerivative);

void BM_TbFullStep(benchmark::State& state) {
  const int nx = state.range(0);
  System s = structures::diamond(Element::C, 3.567, nx, nx, 2);
  structures::perturb(s, 0.02, 11);
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  (void)calc.compute(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.compute(s).energy);
  }
  state.counters["atoms"] = static_cast<double>(s.size());
}
BENCHMARK(BM_TbFullStep)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_TbStepPartialSpectrum(benchmark::State& state) {
  // Same full TBMD step, but with the MD production configuration: no
  // eigenvalue reporting, so the calculator only diagonalizes the occupied
  // window.  Compare against BM_TbFullStep for the end-to-end win.
  const int nx = state.range(0);
  System s = structures::diamond(Element::C, 3.567, nx, nx, 2);
  structures::perturb(s, 0.02, 11);
  tb::TbOptions opt;
  opt.report_eigenvalues = false;  // kAuto then takes the partial path
  tb::TightBindingCalculator calc(tb::xwch_carbon(), opt);
  (void)calc.compute(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.compute(s).energy);
  }
  state.counters["atoms"] = static_cast<double>(s.size());
}
BENCHMARK(BM_TbStepPartialSpectrum)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
