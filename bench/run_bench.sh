#!/usr/bin/env bash
# Baseline performance driver: runs the hot-kernel microbenchmarks serial
# (OMP_NUM_THREADS=1) and OpenMP-parallel (all cores), plus the EXP-F1
# step-scaling experiment, and writes a machine-readable BENCH_baseline.json
# next to this script's repo root so every future perf PR has a trajectory
# to beat.
#
# Usage:  bench/run_bench.sh [build-dir]
# Env:    THREADS=<n>   thread count for the parallel pass (default: nproc)
#         FILTER=<re>   benchmark filter (default: representative hot kernels)
#         SKIP_F1=1     skip the exp_f1 scaling experiment (~5 min); the JSON
#                       then records exp_f1_step_scaling: null (CI smoke mode)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
# Absolutize: the F1 experiment runs from a temp dir, so a relative
# build-dir argument would otherwise stop resolving there.
mkdir -p "${BUILD_DIR}"
BUILD_DIR="$(cd "${BUILD_DIR}" && pwd)"
THREADS="${THREADS:-$(nproc)}"
FILTER="${FILTER:-BM_Eigh/128|BM_Eigh/256|BM_EighPartial/128|BM_EighPartial/256|BM_BlockedTridiag/256|BM_Gemm/256|BM_BuildHamiltonian/3|BM_NeighborBuild/2000|BM_BondTable/216|BM_BandForces/216|BM_DensityMatrix/256|BM_SparseMultiply/3|BM_BsrSpMM/216|BM_BsrSpMMSym/216|BM_BsrSpMMSym_f32/216|BM_BsrSpMMSym_spd/4|BM_TbOnStep/216|BM_TersoffForceCall/2|BM_TbStepPartialSpectrum/3}"
OUT="${REPO_ROOT}/BENCH_baseline.json"

if [[ ! -x "${BUILD_DIR}/bench_kernels" || ! -x "${BUILD_DIR}/exp_f1_step_scaling" ]]; then
  echo "== building bench targets in ${BUILD_DIR}"
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" >/dev/null
  if ! cmake --build "${BUILD_DIR}" -j --target bench_kernels exp_f1_step_scaling >/dev/null; then
    echo "error: could not build bench targets in ${BUILD_DIR}." >&2
    echo "       bench_kernels needs google-benchmark (Debian: libbenchmark-dev)," >&2
    echo "       and the build dir must be configured with -DTBMD_BUILD_BENCH=ON." >&2
    exit 1
  fi
fi

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

# Warm-up (discarded): the first benchmark run after a build/idle period
# measures the CPU ramping up, which skews the calibration-kernel ratios
# the regression gate depends on.
echo "== bench_kernels: warm-up pass (discarded)"
OMP_NUM_THREADS=1 "${BUILD_DIR}/bench_kernels" \
  --benchmark_filter='BM_Gemm/256|BM_Eigh/256$' \
  --benchmark_min_time=0.5 >/dev/null 2>&1 || true

# Gate pass: the CI-gated kernels measured with the exact invocation the CI
# smoke step uses (short run, fresh-ish thermal state, median of 3 reps).
# Sustained multi-minute passes depress the FLOP-dense Gemm calibration
# kernel more than the branchier solvers, so gated numbers recorded inside
# the long trajectory pass are not comparable with CI's short smoke run.
# Must match the CI smoke filter (ci.yml): includes independent kernels
# (neighbor list, Tersoff, sparse multiply) so the checker's median
# calibration cannot be dragged by a regression correlated across the
# gated linalg kernels.
GATE_FILTER='BM_Eigh/256|BM_EighPartial/256|BM_Gemm/256|BM_BondTable/216|BM_BandForces/216|BM_DensityMatrix/256|BM_NeighborBuild/2000|BM_TersoffForceCall/2|BM_SparseMultiply/3|BM_BsrSpMM/216|BM_BsrSpMMSym/216|BM_BsrSpMMSym_f32/216|BM_BsrSpMMSym_spd/4|BM_TbOnStep/216'
echo "== bench_kernels: gate pass (OMP_NUM_THREADS=1, median of 3 reps)"
OMP_NUM_THREADS=1 "${BUILD_DIR}/bench_kernels" \
  --benchmark_filter="${GATE_FILTER}" --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 \
  --benchmark_format=json --benchmark_out="${TMP}/gate.json" \
  --benchmark_out_format=json >/dev/null

echo "== bench_kernels: serial pass (OMP_NUM_THREADS=1, median of 3 reps)"
OMP_NUM_THREADS=1 "${BUILD_DIR}/bench_kernels" \
  --benchmark_filter="${FILTER}" --benchmark_repetitions=3 \
  --benchmark_format=json --benchmark_out="${TMP}/serial.json" \
  --benchmark_out_format=json >/dev/null

echo "== bench_kernels: OpenMP pass (OMP_NUM_THREADS=${THREADS}, median of 3 reps)"
OMP_NUM_THREADS="${THREADS}" "${BUILD_DIR}/bench_kernels" \
  --benchmark_filter="${FILTER}" --benchmark_repetitions=3 \
  --benchmark_format=json --benchmark_out="${TMP}/omp.json" \
  --benchmark_out_format=json >/dev/null

F1_SECONDS=""
if [[ "${SKIP_F1:-0}" != "1" ]]; then
  echo "== exp_f1_step_scaling (OMP_NUM_THREADS=${THREADS})"
  F1_START=$(date +%s.%N)
  (cd "${TMP}" && OMP_NUM_THREADS="${THREADS}" "${BUILD_DIR}/exp_f1_step_scaling" >f1.log)
  F1_SECONDS=$(awk -v a="${F1_START}" -v b="$(date +%s.%N)" 'BEGIN { printf "%.3f", b - a }')
else
  echo "== exp_f1_step_scaling skipped (SKIP_F1=1)"
fi

python3 - "${TMP}" "${OUT}" "${THREADS}" "${F1_SECONDS}" "${REPO_ROOT}" <<'PY'
import csv, json, platform, statistics, sys
from datetime import datetime, timezone

tmp, out, threads = sys.argv[1], sys.argv[2], int(sys.argv[3])
f1_seconds = float(sys.argv[4]) if sys.argv[4] else None  # empty: SKIP_F1=1

# Share the benchmark-JSON parsing (median-aggregate precedence) with the
# CI regression checker so the recorded gate_ms and the gate comparison can
# never desynchronize.
sys.path.insert(0, f"{sys.argv[5]}/bench")
from check_bench_regression import load_result

def load(path):
    with open(path) as f:
        ctx = json.load(f).get("context", {})
    return load_result(path), ctx

serial, ctx = load(f"{tmp}/serial.json")
gate, _ = load(f"{tmp}/gate.json")
parallel, _ = load(f"{tmp}/omp.json")

# serial_ms/omp_ms/speedup all come from the two sustained full passes
# (same thermal context); gate_ms is the CI-smoke-comparable short-pass
# measurement the regression checker compares against.
kernels = []
for name in serial:
    s, p = serial[name], parallel.get(name)
    entry = {
        "name": name,
        "serial_ms": round(s, 4),
        "omp_ms": round(p, 4) if p is not None else None,
        "speedup": round(s / p, 3) if p else None,
    }
    if name in gate:
        entry["gate_ms"] = round(gate[name], 4)
    kernels.append(entry)

speedups = [k["speedup"] for k in kernels if k["speedup"]]
geomean = round(statistics.geometric_mean(speedups), 3) if speedups else None

f1 = None
if f1_seconds is not None:
    with open(f"{tmp}/exp_f1_step_scaling.csv") as f:
        f1 = {"wall_seconds": round(f1_seconds, 2), "rows": list(csv.DictReader(f))}

doc = {
    "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    "host": {
        "machine": platform.machine(),
        "num_cpus": ctx.get("num_cpus"),
        "cpu_mhz": ctx.get("mhz_per_cpu"),
    },
    "threads_parallel_pass": threads,
    "bench_kernels": {
        "kernels": kernels,
        "speedup_geomean": geomean,
        "note": "speedup == serial_ms / omp_ms; ~1.0 expected on single-core hosts",
    },
    "exp_f1_step_scaling": f1,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"== wrote {out}")
print(f"   kernels: {len(kernels)}, OpenMP speedup geomean: {geomean} "
      f"({threads} threads, {ctx.get('num_cpus')} cpus)")
if f1 is not None:
    print(f"   exp_f1 wall: {f1['wall_seconds']}s, {len(f1['rows'])} size points")
PY
