#!/usr/bin/env bash
# Baseline performance driver: runs the hot-kernel microbenchmarks serial
# (OMP_NUM_THREADS=1) and OpenMP-parallel (all cores), plus the EXP-F1
# step-scaling experiment, and writes a machine-readable BENCH_baseline.json
# next to this script's repo root so every future perf PR has a trajectory
# to beat.
#
# Usage:  bench/run_bench.sh [build-dir]
# Env:    THREADS=<n>   thread count for the parallel pass (default: nproc)
#         FILTER=<re>   benchmark filter (default: representative hot kernels)
#         SKIP_F1=1     skip the exp_f1 scaling experiment (~5 min); the JSON
#                       then records exp_f1_step_scaling: null (CI smoke mode)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
# Absolutize: the F1 experiment runs from a temp dir, so a relative
# build-dir argument would otherwise stop resolving there.
mkdir -p "${BUILD_DIR}"
BUILD_DIR="$(cd "${BUILD_DIR}" && pwd)"
THREADS="${THREADS:-$(nproc)}"
FILTER="${FILTER:-BM_Eigh/128|BM_Eigh/256|BM_EighPartial/128|BM_EighPartial/256|BM_BlockedTridiag/256|BM_Gemm/256|BM_BuildHamiltonian/3|BM_NeighborBuild/2000|BM_BandForces/2|BM_DensityMatrix/2|BM_SparseMultiply/3|BM_TersoffForceCall/2|BM_TbStepPartialSpectrum/3}"
OUT="${REPO_ROOT}/BENCH_baseline.json"

if [[ ! -x "${BUILD_DIR}/bench_kernels" || ! -x "${BUILD_DIR}/exp_f1_step_scaling" ]]; then
  echo "== building bench targets in ${BUILD_DIR}"
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" >/dev/null
  if ! cmake --build "${BUILD_DIR}" -j --target bench_kernels exp_f1_step_scaling >/dev/null; then
    echo "error: could not build bench targets in ${BUILD_DIR}." >&2
    echo "       bench_kernels needs google-benchmark (Debian: libbenchmark-dev)," >&2
    echo "       and the build dir must be configured with -DTBMD_BUILD_BENCH=ON." >&2
    exit 1
  fi
fi

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

echo "== bench_kernels: serial pass (OMP_NUM_THREADS=1)"
OMP_NUM_THREADS=1 "${BUILD_DIR}/bench_kernels" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json --benchmark_out="${TMP}/serial.json" \
  --benchmark_out_format=json >/dev/null

echo "== bench_kernels: OpenMP pass (OMP_NUM_THREADS=${THREADS})"
OMP_NUM_THREADS="${THREADS}" "${BUILD_DIR}/bench_kernels" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json --benchmark_out="${TMP}/omp.json" \
  --benchmark_out_format=json >/dev/null

F1_SECONDS=""
if [[ "${SKIP_F1:-0}" != "1" ]]; then
  echo "== exp_f1_step_scaling (OMP_NUM_THREADS=${THREADS})"
  F1_START=$(date +%s.%N)
  (cd "${TMP}" && OMP_NUM_THREADS="${THREADS}" "${BUILD_DIR}/exp_f1_step_scaling" >f1.log)
  F1_SECONDS=$(awk -v a="${F1_START}" -v b="$(date +%s.%N)" 'BEGIN { printf "%.3f", b - a }')
else
  echo "== exp_f1_step_scaling skipped (SKIP_F1=1)"
fi

python3 - "${TMP}" "${OUT}" "${THREADS}" "${F1_SECONDS}" <<'PY'
import csv, json, platform, statistics, sys
from datetime import datetime, timezone

tmp, out, threads = sys.argv[1], sys.argv[2], int(sys.argv[3])
f1_seconds = float(sys.argv[4]) if sys.argv[4] else None  # empty: SKIP_F1=1

def load(path):
    with open(path) as f:
        d = json.load(f)
    to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
    # Skip BigO/RMS aggregate rows emitted by ->Complexity() families.
    return {b["name"]: b["real_time"] * to_ms[b["time_unit"]]
            for b in d["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"}, d.get("context", {})

serial, ctx = load(f"{tmp}/serial.json")
parallel, _ = load(f"{tmp}/omp.json")

kernels = []
for name in serial:
    s, p = serial[name], parallel.get(name)
    kernels.append({
        "name": name,
        "serial_ms": round(s, 4),
        "omp_ms": round(p, 4) if p is not None else None,
        "speedup": round(s / p, 3) if p else None,
    })

speedups = [k["speedup"] for k in kernels if k["speedup"]]
geomean = round(statistics.geometric_mean(speedups), 3) if speedups else None

f1 = None
if f1_seconds is not None:
    with open(f"{tmp}/exp_f1_step_scaling.csv") as f:
        f1 = {"wall_seconds": round(f1_seconds, 2), "rows": list(csv.DictReader(f))}

doc = {
    "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    "host": {
        "machine": platform.machine(),
        "num_cpus": ctx.get("num_cpus"),
        "cpu_mhz": ctx.get("mhz_per_cpu"),
    },
    "threads_parallel_pass": threads,
    "bench_kernels": {
        "kernels": kernels,
        "speedup_geomean": geomean,
        "note": "speedup == serial_ms / omp_ms; ~1.0 expected on single-core hosts",
    },
    "exp_f1_step_scaling": f1,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"== wrote {out}")
print(f"   kernels: {len(kernels)}, OpenMP speedup geomean: {geomean} "
      f"({threads} threads, {ctx.get('num_cpus')} cpus)")
if f1 is not None:
    print(f"   exp_f1 wall: {f1['wall_seconds']}s, {len(f1['rows'])} size points")
PY
