/// \file exp_a1_ablation.cpp
/// \brief EXP-A1 -- ablation studies of the design decisions in DESIGN.md:
///   (a) Verlet skin width: rebuild counts and wall time over an MD run,
///   (b) linked-cell binning vs brute-force neighbor search,
///   (c) Householder+QL eigensolver vs the Jacobi reference.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/io/table.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/linalg/jacobi.hpp"
#include "src/md/gear.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/neighbor/neighbor_list.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/onx/sp2.hpp"
#include "src/potentials/lennard_jones.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/hamiltonian.hpp"
#include "src/util/random.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace tbmd;
  std::printf("EXP-A1: ablations\n\n");

  // (a) Verlet skin sweep on a classical MD run (500 atoms, 200 steps).
  {
    std::printf("(a) Verlet skin vs rebuild count (Tersoff Si, 216 atoms, "
                "200 steps at 800 K)\n");
    io::Table table({"skin_A", "list_builds", "wall_ms"});
    for (const double skin : {0.0, 0.25, 0.5, 1.0, 1.5}) {
      System s = structures::diamond(Element::Si, 5.431, 3, 3, 3);
      md::maxwell_boltzmann_velocities(s, 800.0, 17);
      potentials::TersoffParams p = potentials::tersoff_silicon();
      p.skin = skin;
      potentials::TersoffCalculator calc(p);
      md::MdDriver driver(s, calc, {1.0});
      WallTimer w;
      driver.run(200);
      // Count rebuilds via a fresh probe list (the calculator's list is
      // private); instead time is the observable + rebuild count from the
      // shared neighbor list statistics of a replayed run.
      NeighborList probe;
      NeighborList::Options opt{p.outer_cutoff(), skin};
      System replay = structures::diamond(Element::Si, 5.431, 3, 3, 3);
      md::maxwell_boltzmann_velocities(replay, 800.0, 17);
      potentials::TersoffCalculator calc2(p);
      md::MdDriver replay_driver(replay, calc2, {1.0});
      std::size_t builds = 0;
      replay_driver.run(200, [&](const md::MdDriver& d, long) {
        if (probe.ensure(d.system().positions(), d.system().cell(), opt)) {
          ++builds;
        }
      });
      table.add_numeric_row({skin, static_cast<double>(builds),
                             w.seconds() * 1000.0},
                            4);
    }
    table.print(std::cout);
    table.write_csv("exp_a1_skin.csv");
    std::printf("expected: rebuilds drop steeply with skin; wall time has a "
                "shallow minimum.\n\n");
  }

  // (b) binned vs brute-force neighbor construction.
  {
    std::printf("(b) neighbor list: linked-cell vs O(N^2) brute force\n");
    io::Table table({"N", "binned_ms", "brute_ms", "ratio"});
    for (const std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
      System s = structures::random_gas(Element::Ar, n, 0.02, 1.5, 3);
      NeighborList list;
      WallTimer wb;
      list.build(s.positions(), s.cell(), {3.0, 0.3});
      const double t_binned = wb.seconds() * 1000.0;
      WallTimer wf;
      (void)brute_force_pairs(s.positions(), s.cell(), 3.3);
      const double t_brute = wf.seconds() * 1000.0;
      table.add_numeric_row({static_cast<double>(n), t_binned, t_brute,
                             t_brute / t_binned},
                            4);
    }
    table.print(std::cout);
    table.write_csv("exp_a1_neighbor.csv");
    std::printf("expected: ratio grows ~linearly with N.\n\n");
  }

  // (c) Householder+QL vs Jacobi.
  {
    std::printf("(c) eigensolver: Householder+QL vs cyclic Jacobi\n");
    io::Table table({"n", "householder_ql_ms", "jacobi_ms", "ratio"});
    Rng rng(7);
    for (const std::size_t n : {64u, 128u, 256u, 384u}) {
      linalg::Matrix a(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
          const double v = rng.uniform(-1, 1);
          a(i, j) = v;
          a(j, i) = v;
        }
      }
      WallTimer w1;
      (void)linalg::eigh(a);
      const double t_ql = w1.seconds() * 1000.0;
      WallTimer w2;
      (void)linalg::jacobi_eigh(a);
      const double t_j = w2.seconds() * 1000.0;
      table.add_numeric_row({static_cast<double>(n), t_ql, t_j, t_j / t_ql},
                            4);
    }
    table.print(std::cout);
    table.write_csv("exp_a1_eigensolver.csv");
    std::printf("expected: QL wins by a growing factor (same O(N^3) but far "
                "smaller constant).\n\n");
  }

  // (d) integrator ablation: velocity Verlet vs 5th-order Gear.
  {
    std::printf("(d) integrator: velocity Verlet vs Gear 5th order "
                "(LJ argon, 1 ps)\n");
    io::Table table({"dt_fs", "verlet_rms_meV_atom", "gear_rms_meV_atom"});
    for (const double dt : {1.0, 2.0, 4.0}) {
      auto rms_of = [&](bool use_gear) {
        System s = structures::fcc(Element::Ar, 5.26, 2, 2, 2);
        md::maxwell_boltzmann_velocities(s, 40.0, 21);
        potentials::LennardJonesParams p;
        p.cutoff = 4.8;
        p.skin = 0.4;
        potentials::LennardJonesCalculator calc(p);
        const long steps = static_cast<long>(1000.0 / dt);
        double sum2 = 0.0;
        if (use_gear) {
          md::GearDriver driver(s, calc, dt);
          const double e0 = driver.total_energy();
          for (long q = 0; q < steps; ++q) {
            driver.step();
            const double de = driver.total_energy() - e0;
            sum2 += de * de;
          }
        } else {
          md::MdDriver driver(s, calc, {dt});
          const double e0 = driver.total_energy();
          for (long q = 0; q < steps; ++q) {
            driver.step();
            const double de = driver.total_energy() - e0;
            sum2 += de * de;
          }
        }
        return 1000.0 * std::sqrt(sum2 / steps) / 32.0;  // meV/atom
      };
      table.add_numeric_row({dt, rms_of(false), rms_of(true)}, 4);
    }
    table.print(std::cout);
    table.write_csv("exp_a1_integrator.csv");
    std::printf("expected: Gear wins at small dt (higher order), Verlet "
                "at large dt\n(no long-time symplectic bound for Gear).\n\n");
  }

  // (e) O(N) method ablation: Palser-Manolopoulos vs SP2.
  {
    std::printf("(e) purification: PM canonical vs SP2\n");
    io::Table table({"N_atoms", "pm_iters", "pm_ms", "sp2_iters", "sp2_ms",
                     "dE_meV_atom"});
    for (const int nx : {2, 3}) {
      System s = structures::diamond(Element::C, 3.567, nx, nx, nx);
      NeighborList list;
      const tb::TbModel m = tb::model_by_name("c");
      list.build(s.positions(), s.cell(), {m.cutoff(), 0.3});
      const auto h = onx::build_sparse_hamiltonian(m, s, list);
      const int nocc = s.total_valence_electrons() / 2;
      onx::PurificationOptions opt;
      opt.drop_tolerance = 1e-7;

      WallTimer w1;
      const auto pm = onx::palser_manolopoulos(h, nocc, opt);
      const double t_pm = w1.seconds() * 1000.0;
      WallTimer w2;
      const auto sp2 = onx::sp2_purification(h, nocc, opt);
      const double t_sp2 = w2.seconds() * 1000.0;

      table.add_numeric_row(
          {static_cast<double>(s.size()), static_cast<double>(pm.iterations),
           t_pm, static_cast<double>(sp2.iterations), t_sp2,
           1000.0 * std::fabs(pm.band_energy - sp2.band_energy) / s.size()},
          4);
    }
    table.print(std::cout);
    table.write_csv("exp_a1_purification.csv");
    std::printf("expected: SP2 needs more iterations but each costs one\n"
                "multiply instead of two; energies agree to sub-meV/atom.\n");
  }
  return 0;
}
