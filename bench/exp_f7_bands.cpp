/// \file exp_f7_bands.cpp
/// \brief EXP-F7 -- Figure 7: tight-binding band structures.
///
/// (a) Graphene along Gamma -> K' -> X -> Gamma of the rectangular cell
///     (the Dirac point folds to fractional (1/3, 0, 0)): the pi gap must
///     close at the Dirac point.
/// (b) Silicon (8-atom cubic cell) along Gamma -> X -> M -> Gamma: an
///     indirect-gap insulator with ~1.2 eV gap in the GSP model.
/// (c) Brillouin-zone convergence of the k-sampled band energy.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "src/io/table.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/bloch.hpp"
#include "src/tb/tb_model.hpp"

namespace {

using namespace tbmd;

void print_bands(const char* label, const System& system,
                 const tb::TbModel& model, const std::vector<Vec3>& kfracs,
                 io::Table& csv) {
  std::vector<Vec3> kpts;
  for (const Vec3& f : kfracs) {
    kpts.push_back(tb::fractional_to_k(system.cell(), f));
  }
  const auto bands = tb::band_structure(model, system, kpts);
  const int ne = system.total_valence_electrons();
  const std::size_t homo = ne / 2 - 1;

  std::printf("\n%s: HOMO/LUMO along the path (eV)\n", label);
  std::printf("  %-22s %10s %10s %8s\n", "k (frac)", "HOMO", "LUMO", "gap");
  for (std::size_t q = 0; q < kfracs.size(); ++q) {
    const double h = bands[q][homo];
    const double l = bands[q][homo + 1];
    std::printf("  (%5.3f, %5.3f, %5.3f)  %10.4f %10.4f %8.4f\n", kfracs[q].x,
                kfracs[q].y, kfracs[q].z, h, l, l - h);
    for (std::size_t b = 0; b < bands[q].size(); ++b) {
      csv.add_row({label, std::to_string(q), std::to_string(b),
                   std::to_string(bands[q][b])});
    }
  }
}

}  // namespace

int main() {
  std::printf("EXP-F7: tight-binding band structures\n");
  io::Table csv({"system", "k_index", "band", "energy_eV"});

  // (a) graphene: rectangular 4-atom cell; Dirac point at (1/3, 0, 0).
  {
    System g = structures::graphene(Element::C, 1.42, 1, 1);
    const std::vector<Vec3> waypoints{
        {0, 0, 0}, {1.0 / 3.0, 0, 0}, {0.5, 0, 0}, {0.5, 0.5, 0}, {0, 0, 0}};
    std::vector<Vec3> path;
    for (std::size_t leg = 0; leg + 1 < waypoints.size(); ++leg) {
      for (int t = 0; t < 5; ++t) {
        path.push_back(waypoints[leg] +
                       (t / 5.0) * (waypoints[leg + 1] - waypoints[leg]));
      }
    }
    path.push_back(waypoints.back());
    print_bands("graphene", g, tb::xwch_carbon(), path, csv);
  }

  // (b) silicon cubic cell: Gamma -> X -> M -> Gamma.
  {
    System si = structures::diamond(Element::Si, 5.431, 1, 1, 1);
    const std::vector<Vec3> waypoints{
        {0, 0, 0}, {0.5, 0, 0}, {0.5, 0.5, 0}, {0, 0, 0}};
    std::vector<Vec3> path;
    for (std::size_t leg = 0; leg + 1 < waypoints.size(); ++leg) {
      for (int t = 0; t < 6; ++t) {
        path.push_back(waypoints[leg] +
                       (t / 6.0) * (waypoints[leg + 1] - waypoints[leg]));
      }
    }
    path.push_back(waypoints.back());
    print_bands("silicon", si, tb::gsp_silicon(), path, csv);
  }

  csv.write_csv("exp_f7_bands.csv");

  // (c) k-grid convergence of the band energy.
  {
    std::printf("\nBZ convergence (Si, 8-atom cell):\n");
    io::Table table({"grid", "E_band_eV_atom", "gap_eV"});
    System si = structures::diamond(Element::Si, 5.431, 1, 1, 1);
    const int ne = si.total_valence_electrons();
    for (const int g : {1, 2, 3, 4, 6}) {
      const auto kpts = tb::monkhorst_pack_grid(si.cell(), g, g, g);
      const auto res = tb::kgrid_band_energy(tb::gsp_silicon(), si, kpts, ne);
      table.add_numeric_row({static_cast<double>(g),
                             res.band_energy / si.size(), res.gap},
                            6);
    }
    table.print(std::cout);
    table.write_csv("exp_f7_kconv.csv");
  }

  std::printf("\nExpected shape: graphene gap -> 0 at the (1/3,0,0) Dirac\n"
              "point and opens elsewhere; silicon gap stays open along the\n"
              "path (insulator); k-grid band energy converges by ~4^3.\n");
  return 0;
}
