#!/usr/bin/env python3
"""Gate CI on hot-kernel performance against BENCH_baseline.json.

Usage:
    check_bench_regression.py RESULT_JSON [--baseline BENCH_baseline.json]
        [--kernel BM_Eigh/256 ...] [--max-regression 0.20]
        [--normalize-by BM_Gemm/256 | --no-normalize]

RESULT_JSON is google-benchmark ``--benchmark_out`` output from the current
build; the baseline is the repo's recorded BENCH_baseline.json (serial_ms
per kernel).  A kernel fails when

    current_ms / current_ref_ms  >  (1 + max_regression) * base_ms / base_ref_ms

where ref is the --normalize-by calibration kernel.  Normalizing by a
second compute-bound kernel measured in the same run cancels the absolute
speed difference between the machine that recorded the baseline and the CI
runner, so the gate tracks genuine algorithmic regressions rather than
runner lottery.  --no-normalize compares raw milliseconds (only meaningful
on the baseline machine itself).
"""

import argparse
import json
import sys

TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_result(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue  # skip BigO/RMS aggregate rows
        out[row["name"]] = row["real_time"] * TO_MS[row["time_unit"]]
    return out


def load_baseline(path):
    with open(path) as f:
        doc = json.load(f)
    return {k["name"]: k["serial_ms"]
            for k in doc["bench_kernels"]["kernels"]
            if k.get("serial_ms") is not None}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("result", help="google-benchmark JSON from this build")
    ap.add_argument("--baseline", default="BENCH_baseline.json")
    ap.add_argument("--kernel", action="append", default=[],
                    help="kernel(s) to gate; default: BM_Eigh/256")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    ap.add_argument("--normalize-by", default="BM_Gemm/256",
                    help="calibration kernel cancelling machine speed")
    ap.add_argument("--no-normalize", action="store_true",
                    help="compare raw milliseconds instead")
    args = ap.parse_args()
    kernels = args.kernel or ["BM_Eigh/256"]

    current = load_result(args.result)
    baseline = load_baseline(args.baseline)

    ref_cur = ref_base = 1.0
    if not args.no_normalize:
        ref = args.normalize_by
        if ref not in current or ref not in baseline:
            print(f"error: calibration kernel {ref} missing from "
                  f"{'result' if ref not in current else 'baseline'}")
            return 2
        ref_cur, ref_base = current[ref], baseline[ref]
        print(f"calibration {ref}: current {ref_cur:.3f} ms, "
              f"baseline {ref_base:.3f} ms")

    failed = False
    for name in kernels:
        if name not in current:
            print(f"error: {name} missing from benchmark output")
            return 2
        if name not in baseline:
            print(f"note: {name} has no baseline entry yet; skipping")
            continue
        score = current[name] / ref_cur
        base_score = baseline[name] / ref_base
        ratio = score / base_score
        verdict = "FAIL" if ratio > 1.0 + args.max_regression else "ok"
        failed |= verdict == "FAIL"
        print(f"{verdict:4} {name}: current {current[name]:.3f} ms, "
              f"baseline {baseline[name]:.3f} ms, "
              f"normalized ratio {ratio:.3f} "
              f"(limit {1.0 + args.max_regression:.2f})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
