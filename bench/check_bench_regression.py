#!/usr/bin/env python3
"""Gate CI on hot-kernel performance against BENCH_baseline.json.

Usage:
    check_bench_regression.py RESULT_JSON [--baseline BENCH_baseline.json]
        [--kernel BM_Eigh/256 ...] [--max-regression 0.25]
        [--normalize-by median | --normalize-by BM_Gemm/256 | --no-normalize]

The default gated set covers the step-pipeline hot kernels: the
eigensolvers, the bond-table build, the density-matrix rank-k update, the
blocked-sparse SpMMs (full-pattern BM_BsrSpMM/216, the symmetric-half
warm-pattern production kernel BM_BsrSpMMSym/216 and its fp32 twin
BM_BsrSpMMSym_f32/216 -- the mixed-precision loose-phase kernel) and the
full O(N) purification step (BM_TbOnStep/216).  (BM_BandForces/216 is
recorded but not gated: a ~40 us kernel has a process-level noise floor
wider than any regression worth gating on.)

RESULT_JSON is google-benchmark ``--benchmark_out`` output from the current
build; the baseline is the repo's recorded BENCH_baseline.json (serial_ms
per kernel).  A kernel fails when

    current_ms / current_ref_ms  >  (1 + max_regression) * base_ms / base_ref_ms

where ref is the calibration factor.  The default (--normalize-by median)
uses the median of current/baseline ratios over every kernel present in
both files: a uniform machine-speed difference between the baseline host
and the CI runner shifts all ratios equally and cancels exactly, while a
genuine regression in one kernel barely moves the median of many.  The
smoke set therefore includes kernels with no shared code (neighbor list,
Tersoff, sparse multiply) so that even a regression correlated across all
of the gated linalg kernels cannot drag the median with it.  This is
far more robust than designating one calibration kernel (a single kernel
-- e.g. a cache-boundary-sized GEMM -- can be bimodal across processes on
shared hosts, poisoning every normalized ratio).  Passing a kernel name
instead restores single-kernel calibration; --no-normalize compares raw
milliseconds (only meaningful on the baseline machine itself).
"""

import argparse
import json
import sys

TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_result(path):
    """Per-kernel time in ms.  With --benchmark_repetitions the median
    aggregate row is used (robust against a noisy-neighbor burst hitting
    one repetition); plain single runs fall back to the iteration row.
    BigO/RMS aggregates from ->Complexity() families are ignored."""
    with open(path) as f:
        doc = json.load(f)
    iters, medians = {}, {}
    for row in doc.get("benchmarks", []):
        if "real_time" not in row:
            continue  # BigO/RMS aggregate rows carry coefficients instead
        ms = row["real_time"] * TO_MS[row["time_unit"]]
        run_type = row.get("run_type", "iteration")
        if run_type == "iteration":
            iters[row["name"]] = ms
        elif run_type == "aggregate" and row.get("aggregate_name") == "median":
            medians[row.get("run_name", row["name"])] = ms
    return {**iters, **medians}  # medians win over raw repetition rows


def load_baseline(path):
    """Baseline ms per kernel.  gate_ms (recorded by run_bench.sh with the
    same short invocation the CI smoke step uses) is preferred over the
    sustained-pass serial_ms: long passes depress FLOP-dense kernels more
    than branchy ones, so only gate-pass numbers are comparable with CI."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for k in doc["bench_kernels"]["kernels"]:
        ms = k.get("gate_ms", k.get("serial_ms"))
        if ms is not None:
            out[k["name"]] = ms
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("result", help="google-benchmark JSON from this build")
    ap.add_argument("--baseline", default="BENCH_baseline.json")
    ap.add_argument("--kernel", action="append", default=[],
                    help="kernel(s) to gate, optionally NAME=FRAC to give "
                         "one kernel a tighter limit than --max-regression; "
                         "default: eigensolvers, bond table, density matrix, "
                         "blocked SpMM and the full O(N) step "
                         "(BM_BandForces is recorded but ungated: too noisy "
                         "at ~40 us)")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="allowed fractional slowdown (default 0.25)")
    ap.add_argument("--normalize-by", default="median",
                    help="'median' (default: median current/baseline ratio "
                         "over all shared kernels) or a calibration kernel "
                         "name cancelling machine speed")
    ap.add_argument("--no-normalize", action="store_true",
                    help="compare raw milliseconds instead")
    args = ap.parse_args()
    # BM_BsrSpMMSym/216 carries a tighter 5% limit: it is the steady-state
    # purification kernel on the uniform sp fast path, and the variable-
    # block generalization must stay effectively free for carbon/silicon.
    # The fp32 twin rides at the default limit: it is ISA-sensitive (packed
    # ps lanes gain more from AVX/FMA than the median kernel), so a
    # non-native CI build shifts its normalized ratio more than the fp64
    # kernels'.
    specs = args.kernel or ["BM_Eigh/256", "BM_EighPartial/256",
                            "BM_BondTable/216", "BM_DensityMatrix/256",
                            "BM_BsrSpMM/216", "BM_BsrSpMMSym/216=0.05",
                            "BM_BsrSpMMSym_f32/216", "BM_TbOnStep/216"]
    kernels = []
    for spec in specs:  # NAME or NAME=FRAC (per-kernel limit override)
        name, _, frac = spec.partition("=")
        kernels.append((name, float(frac) if frac else args.max_regression))

    current = load_result(args.result)
    baseline = load_baseline(args.baseline)

    ref_cur = ref_base = 1.0
    if not args.no_normalize:
        if args.normalize_by == "median":
            shared = sorted(set(current) & set(baseline))
            if not shared:
                print("error: no kernels shared between result and baseline")
                return 2
            ratios = sorted(current[k] / baseline[k] for k in shared)
            mid = len(ratios) // 2
            ref_cur = (ratios[mid] if len(ratios) % 2
                       else 0.5 * (ratios[mid - 1] + ratios[mid]))
            ref_base = 1.0
            print(f"calibration: median current/baseline ratio "
                  f"{ref_cur:.3f} over {len(shared)} kernels")
        else:
            ref = args.normalize_by
            if ref not in current or ref not in baseline:
                print(f"error: calibration kernel {ref} missing from "
                      f"{'result' if ref not in current else 'baseline'}")
                return 2
            ref_cur, ref_base = current[ref], baseline[ref]
            print(f"calibration {ref}: current {ref_cur:.3f} ms, "
                  f"baseline {ref_base:.3f} ms")

    failed = False
    for name, limit in kernels:
        if name not in current:
            print(f"error: {name} missing from benchmark output")
            return 2
        if name not in baseline:
            print(f"note: {name} has no baseline entry yet; skipping")
            continue
        score = current[name] / ref_cur
        base_score = baseline[name] / ref_base
        ratio = score / base_score
        verdict = "FAIL" if ratio > 1.0 + limit else "ok"
        failed |= verdict == "FAIL"
        print(f"{verdict:4} {name}: current {current[name]:.3f} ms, "
              f"baseline {baseline[name]:.3f} ms, "
              f"normalized ratio {ratio:.3f} "
              f"(limit {1.0 + limit:.2f})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
