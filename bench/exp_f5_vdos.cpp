/// \file exp_f5_vdos.cpp
/// \brief EXP-F5 -- Figure 5: vibrational spectra from the velocity
/// autocorrelation function.
///
/// (a) The C2 dimer stretch: excite the bond, run NVE, Fourier-transform
///     the VACF and compare the peak against the experimental C2 stretch
///     (~1855 cm^-1).
/// (b) Bulk Si64 vibrational DOS at 300 K: the optical peak should land
///     near the experimental TO frequency (~15.5 THz).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/analysis/vacf.hpp"
#include "src/io/table.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/relax/relax.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/units.hpp"

namespace {

using namespace tbmd;

std::size_t argmax(const std::vector<double>& v) {
  return std::max_element(v.begin(), v.end()) - v.begin();
}

}  // namespace

int main() {
  std::printf("EXP-F5: vibrational spectra from the VACF\n\n");

  // --- (a) C2 dimer stretch -------------------------------------------
  {
    tb::TightBindingCalculator calc(tb::xwch_carbon());
    System dimer = structures::dimer(Element::C, 1.31);
    relax::RelaxOptions ropt;
    ropt.force_tolerance = 1e-5;
    (void)relax::fire_relax(dimer, calc, ropt);
    const double req = dimer.distance(0, 1);

    // Stretch by 2% and release (pure stretch mode).
    const Vec3 axis = normalized(dimer.displacement(0, 1));
    dimer.positions()[1] += 0.02 * req * axis;

    md::MdDriver driver(dimer, calc, {0.25});
    analysis::VacfAccumulator vacf(0.25);
    driver.run(1600, [&](const md::MdDriver& d, long) {
      vacf.add_frame(d.system());
    });

    std::vector<double> freqs;  // 1/fs
    for (int q = 1; q <= 240; ++q) freqs.push_back(0.0005 * q);
    const auto spec = vacf.spectrum(freqs, 800);
    const double f_peak = freqs[argmax(spec)];
    std::printf("(a) C2 dimer: r_eq = %.3f A, stretch peak = %.1f cm^-1 "
                "(exp. C2: ~1855 cm^-1)\n",
                req, units::per_fs_to_inv_cm(f_peak));
  }

  // --- (b) bulk silicon VDOS -------------------------------------------
  {
    System si = structures::diamond(Element::Si, 5.431, 2, 2, 2);
    md::maxwell_boltzmann_velocities(si, 300.0, 41);
    tb::TightBindingCalculator calc(tb::gsp_silicon());
    md::MdDriver driver(si, calc, {2.0});
    driver.run(50);  // microcanonical equilibration

    analysis::VacfAccumulator vacf(2.0);
    driver.run(500, [&](const md::MdDriver& d, long) {
      vacf.add_frame(d.system());
    });

    std::vector<double> freqs;
    for (int q = 1; q <= 120; ++q) freqs.push_back(0.00025 * q);  // to 30 THz
    const auto spec = vacf.spectrum(freqs, 250);

    io::Table table({"f_THz", "vdos"});
    std::printf("\n(b) Si64 vibrational DOS at 300 K:\n");
    for (std::size_t q = 0; q < freqs.size(); q += 2) {
      const double thz = units::per_fs_to_thz(freqs[q]);
      table.add_numeric_row({thz, spec[q]}, 5);
      const int stars = std::max(0, static_cast<int>(spec[q] * 8.0));
      std::printf("  %5.1f THz | %s\n", thz,
                  std::string(std::min(stars, 70), '*').c_str());
    }
    table.write_csv("exp_f5_vdos.csv");

    const double peak_thz = units::per_fs_to_thz(freqs[argmax(spec)]);
    std::printf("\n  dominant peak: %.1f THz (exp. Si TO ~ 15.5 THz, "
                "acoustic band below ~12 THz)\n", peak_thz);
  }

  std::printf("\nExpected shape: dimer stretch within ~20%% of 1855 cm^-1;\n"
              "Si spectrum spans 0-18 THz with acoustic and optical "
              "features.\n");
  return 0;
}
