#!/usr/bin/env bash
# Asserts the fp32 tile micro-kernels actually compiled to packed
# single-precision SIMD arithmetic.
#
# The kernels (src/linalg/blas.hpp) are built on GNU lane vectors precisely
# because `#pragma omp simd` silently scalarized: GCC lowered the forced
# 4-float loops to vfmadd*ss chains plus shuffle traffic, 3-5x slower per
# call than the fp64 kernel, and nothing failed -- the code was merely
# slow.  This check makes that failure mode loud: it disassembles the
# object that inlines the hot SpMM sweep and requires a healthy count of
# packed ps mul/add/fma instructions (SSE mulps/addps on baseline builds,
# AVX vmulps/vfmadd*ps with -march=native), so a toolchain or flag change
# that de-vectorizes the kernels fails CI instead of shipping a silent
# 2x regression.
#
# Usage:  bench/check_simd_codegen.sh [build-dir]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
OBJ="${BUILD_DIR}/CMakeFiles/tbmd.dir/src/onx/block_sparse.cpp.o"

# The block-sparse TU inlines the header kernels into the fp32 numeric
# sweep -- the production call site whose codegen matters.
if [[ ! -f "${OBJ}" ]]; then
  echo "error: ${OBJ} not found (build the tbmd target first)" >&2
  exit 2
fi

# Packed single-precision arithmetic: legacy-SSE or VEX/EVEX mul, add and
# fused-multiply-add forms.  Memory-operand forms disassemble with the same
# mnemonics, so the pattern only keys on those.
PACKED=$(objdump -d "${OBJ}" |
  grep -cE '\b(v?mulps|v?addps|vfmadd(132|213|231)ps)\b' || true)

# A single stray packed op (e.g. a vectorized fill loop) must not pass the
# check; the inlined 4x4/9x9 kernels contribute dozens of packed ops.
MIN=12
echo "packed ps arithmetic instructions in $(basename "${OBJ}"): ${PACKED} (min ${MIN})"
if (( PACKED < MIN )); then
  echo "FAIL: fp32 micro-kernels appear scalarized" >&2
  exit 1
fi
echo "ok: fp32 micro-kernels vectorized"
