/// \file exp_f1_step_scaling.cpp
/// \brief EXP-F1 -- Figure 1: wall-clock time per MD force evaluation vs
/// system size (log-log) for the three engines:
///   * TBMD with exact diagonalization  -- O(N^3)
///   * TBMD with O(N) purification      -- ~O(N) for gapped systems
///   * classical Tersoff                -- O(N)
///
/// The headline figure of the paper: the O(N^3) wall, where the O(N)
/// method crosses it, and how far below both the classical baseline sits.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/calculator_spec.hpp"
#include "src/io/table.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace tbmd;

double time_force_call(Calculator& calc, System& s, int repeats) {
  (void)calc.compute(s);  // warm the neighbor list
  WallTimer t;
  for (int q = 0; q < repeats; ++q) (void)calc.compute(s);
  return t.seconds() * 1000.0 / repeats;
}

double loglog_slope(const std::vector<double>& n,
                    const std::vector<double>& t) {
  // least-squares slope of log t vs log n
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double m = static_cast<double>(n.size());
  for (std::size_t q = 0; q < n.size(); ++q) {
    const double x = std::log(n[q]);
    const double y = std::log(t[q]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (m * sxy - sx * sy) / (m * sxx - sx * sx);
}

}  // namespace

int main() {
  std::printf("EXP-F1: time per force evaluation vs N (log-log series)\n\n");

  io::Table table({"N_atoms", "tb_exact_ms", "tb_on_ms", "tersoff_ms"});
  std::vector<double> ns, t_exact, t_on, t_ters;

  struct Spec {
    int nx, ny, nz;
    bool run_exact;
    bool run_on;
  };
  // Exact diagonalization is capped at 288 atoms and O(N) purification at
  // 512 so the harness completes in minutes on a laptop-class machine; the
  // Tersoff baseline runs to 1024 to anchor the O(N) classical floor.
  const std::vector<Spec> specs{
      {2, 2, 2, true, true},  {2, 2, 4, true, true},
      {3, 3, 3, true, true},  {3, 3, 4, true, true},
      {4, 4, 4, false, true}, {4, 4, 8, false, false}};

  std::vector<double> n_on;
  for (const Spec& sp : specs) {
    System s = structures::diamond(Element::C, 3.567, sp.nx, sp.ny, sp.nz);
    structures::perturb(s, 0.02, 3);
    const double n = static_cast<double>(s.size());

    double ms_exact = -1.0;
    if (sp.run_exact) {
      const auto exact =
          make_calculator(tb::xwch_carbon(), s, CalculatorSpec::exact());
      ms_exact = time_force_call(*exact, s, 1);
      ns.push_back(n);
      t_exact.push_back(ms_exact);
    }

    double ms_on = -1.0;
    if (sp.run_on) {
      const auto on =
          make_calculator(tb::xwch_carbon(), s, CalculatorSpec::order_n(1e-6));
      ms_on = time_force_call(*on, s, 1);
      n_on.push_back(n);
      t_on.push_back(ms_on);
    }

    potentials::TersoffCalculator tersoff(potentials::tersoff_carbon());
    const double ms_ters = time_force_call(tersoff, s, 5);
    t_ters.push_back(ms_ters);

    table.add_numeric_row({n, ms_exact, ms_on, ms_ters}, 4);
    std::printf("  measured N = %.0f\n", n);
  }

  std::printf("\n");
  table.print(std::cout);
  table.write_csv("exp_f1_step_scaling.csv");

  std::vector<double> n_all;
  for (const Spec& sp : specs) {
    n_all.push_back(8.0 * sp.nx * sp.ny * sp.nz);
  }
  std::printf("\nfitted log-log slopes (expected: exact ~2.5-3, on ~1-1.5,"
              " tersoff ~1):\n");
  std::printf("  tb-exact : %.2f\n", loglog_slope(ns, t_exact));
  std::printf("  tb-on    : %.2f\n", loglog_slope(n_on, t_on));
  std::printf("  tersoff  : %.2f\n", loglog_slope(n_all, t_ters));
  return 0;
}
