/// \file exp_f1_step_scaling.cpp
/// \brief EXP-F1 -- Figure 1: wall-clock time per MD force evaluation vs
/// system size (log-log) for the three engines:
///   * TBMD with exact diagonalization  -- O(N^3)
///   * TBMD with O(N) purification      -- ~O(N) for gapped systems
///   * classical Tersoff                -- O(N)
///
/// The headline figure of the paper: the O(N^3) wall, where the O(N)
/// method crosses it, and how far below both the classical baseline sits.
///
/// Usage: exp_f1_step_scaling [--max-atoms 1024] [--threads N]
///
/// --max-atoms extends the O(N) series up to 21952 atoms (the 1k/5k/20k
/// scale-evidence points of the CI `scaling` job); --threads pins the
/// OpenMP team size for the whole run.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "src/core/calculator_spec.hpp"
#include "src/io/table.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/parallel.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace tbmd;

double arg_or(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

double time_force_call(Calculator& calc, System& s, int repeats) {
  (void)calc.compute(s);  // warm the neighbor list
  WallTimer t;
  for (int q = 0; q < repeats; ++q) (void)calc.compute(s);
  return t.seconds() * 1000.0 / repeats;
}

double loglog_slope(const std::vector<double>& n,
                    const std::vector<double>& t) {
  // least-squares slope of log t vs log n
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double m = static_cast<double>(n.size());
  for (std::size_t q = 0; q < n.size(); ++q) {
    const double x = std::log(n[q]);
    const double y = std::log(t[q]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (m * sxy - sx * sy) / (m * sxx - sx * sx);
}

}  // namespace

int main(int argc, char** argv) {
  const int max_atoms =
      static_cast<int>(arg_or(argc, argv, "--max-atoms", 1024));
  const int threads = static_cast<int>(arg_or(argc, argv, "--threads", 0));
  if (threads > 0) par::set_num_threads(threads);
  std::printf("EXP-F1: time per force evaluation vs N (log-log series, "
              "%d thread(s))\n\n", par::max_threads());

  io::Table table({"N_atoms", "tb_exact_ms", "tb_on_ms", "tersoff_ms"});
  std::vector<double> ns, t_exact, t_on, t_ters;

  struct Spec {
    int nx, ny, nz;
    bool run_exact;
    bool run_on;
  };
  // Exact diagonalization is capped at 288 atoms so the harness completes
  // in minutes on a laptop-class machine; the default --max-atoms 1024
  // ends the O(N) series at 1000 atoms with the Tersoff baseline anchoring
  // the classical floor.  The 5832/21952-atom specs are opt-in via
  // --max-atoms: at drop 1e-6 the density matrix's localization radius puts
  // fill near 30% at 5832 atoms, so a single step runs for hours -- that
  // cost is the target of the mixed-precision / halo-exchange roadmap
  // items, not something to burn CI time on today.
  const std::vector<Spec> specs{
      {2, 2, 2, true, true},    {2, 2, 4, true, true},
      {3, 3, 3, true, true},    {3, 3, 4, true, true},
      {4, 4, 4, false, true},   {5, 5, 5, false, true},
      {4, 4, 8, false, false},  {9, 9, 9, false, true},
      {14, 14, 14, false, true}};

  std::vector<double> n_on;
  std::vector<double> n_all;
  for (const Spec& sp : specs) {
    System s = structures::diamond(Element::C, 3.567, sp.nx, sp.ny, sp.nz);
    if (static_cast<int>(s.size()) > max_atoms) continue;
    structures::perturb(s, 0.02, 3);
    n_all.push_back(static_cast<double>(s.size()));
    const double n = static_cast<double>(s.size());

    double ms_exact = -1.0;
    if (sp.run_exact) {
      const auto exact =
          make_calculator(tb::xwch_carbon(), s, CalculatorSpec::exact());
      ms_exact = time_force_call(*exact, s, 1);
      ns.push_back(n);
      t_exact.push_back(ms_exact);
    }

    double ms_on = -1.0;
    if (sp.run_on) {
      const auto on =
          make_calculator(tb::xwch_carbon(), s, CalculatorSpec::order_n(1e-6));
      ms_on = time_force_call(*on, s, 1);
      n_on.push_back(n);
      t_on.push_back(ms_on);
    }

    potentials::TersoffCalculator tersoff(potentials::tersoff_carbon());
    const double ms_ters = time_force_call(tersoff, s, 5);
    t_ters.push_back(ms_ters);

    table.add_numeric_row({n, ms_exact, ms_on, ms_ters}, 4);
    std::printf("  measured N = %.0f\n", n);
  }

  std::printf("\n");
  table.print(std::cout);
  table.write_csv("exp_f1_step_scaling.csv");

  std::printf("\nfitted log-log slopes (expected: exact ~2.5-3, on ~1-1.5,"
              " tersoff ~1):\n");
  std::printf("  tb-exact : %.2f\n", loglog_slope(ns, t_exact));
  std::printf("  tb-on    : %.2f\n", loglog_slope(n_on, t_on));
  std::printf("  tersoff  : %.2f\n", loglog_slope(n_all, t_ters));
  return 0;
}
