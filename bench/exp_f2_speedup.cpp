/// \file exp_f2_speedup.cpp
/// \brief EXP-F2 -- Figure 2: parallel speedup and efficiency vs thread
/// count for the phases of a TBMD step (and the raw eigensolver).
///
/// The paper reported message-passing speedups on a 1994 supercomputer;
/// the shared-memory analog sweeps the OpenMP thread count available on
/// this machine and reports per-phase speedup and parallel efficiency.

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/io/table.hpp"
#include "src/linalg/eigen_sym.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/parallel.hpp"
#include "src/util/random.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace tbmd;

struct PhaseTimes {
  double bondtable = 0.0;
  double hamiltonian = 0.0;
  double diagonalize = 0.0;
  double density = 0.0;
  double forces = 0.0;
  double total = 0.0;
};

PhaseTimes measure_step(System& s, int steps) {
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  (void)calc.compute(s);  // warm up (neighbor list and allocations)
  calc.phase_timers().reset();
  for (int q = 0; q < steps; ++q) (void)calc.compute(s);
  const auto& t = calc.phase_timers();
  PhaseTimes out;
  out.bondtable = t.seconds("bondtable") / steps;
  out.hamiltonian = t.seconds("hamiltonian") / steps;
  out.diagonalize = t.seconds("diagonalize") / steps;
  out.density = t.seconds("density") / steps;
  out.forces = t.seconds("forces") / steps;
  out.total = t.total() / steps;
  return out;
}

}  // namespace

int main() {
  const int max_threads = par::max_threads();
  std::printf("EXP-F2: OpenMP speedup per TBMD phase (machine has %d threads)\n\n",
              max_threads);

  System s = structures::diamond(Element::C, 3.567, 3, 3, 3);  // 216 atoms
  structures::perturb(s, 0.02, 5);

  io::Table table({"threads", "bondtable_s", "H_build_s", "diag_s",
                   "density_s", "forces_s", "step_s", "step_speedup",
                   "efficiency_pct"});

  double t1_total = 0.0;
  for (int threads = 1; threads <= max_threads; ++threads) {
    par::set_num_threads(threads);
    const PhaseTimes pt = measure_step(s, 2);
    if (threads == 1) t1_total = pt.total;
    const double speedup = t1_total / pt.total;
    table.add_numeric_row({static_cast<double>(threads), pt.bondtable,
                           pt.hamiltonian,
                           pt.diagonalize, pt.density, pt.forces, pt.total,
                           speedup, 100.0 * speedup / threads},
                          4);
    std::printf("  measured %d thread(s)\n", threads);
  }
  par::set_num_threads(max_threads);

  std::printf("\n");
  table.print(std::cout);
  table.write_csv("exp_f2_speedup.csv");

  // Raw eigensolver scaling with threads at a few matrix sizes.
  std::printf("\nraw symmetric eigensolver wall time (s):\n");
  io::Table eig_table({"n_matrix", "threads_1", "threads_max", "speedup"});
  Rng rng(9);
  for (const std::size_t n : {256u, 512u, 768u}) {
    linalg::Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double v = rng.uniform(-1, 1);
        a(i, j) = v;
        a(j, i) = v;
      }
    }
    par::set_num_threads(1);
    WallTimer w1;
    (void)linalg::eigh(a);
    const double t1 = w1.seconds();
    par::set_num_threads(max_threads);
    WallTimer w2;
    (void)linalg::eigh(a);
    const double tm = w2.seconds();
    eig_table.add_numeric_row({static_cast<double>(n), t1, tm, t1 / tm}, 4);
  }
  eig_table.print(std::cout);
  eig_table.write_csv("exp_f2_eigensolver.csv");
  std::printf("\nExpected shape: speedup > 1 and efficiency decreasing\n"
              "moderately with thread count; diagonalization dominates\n"
              "and limits the overall step speedup (Amdahl).\n");
  return 0;
}
