/// \file exp_f6_edos.cpp
/// \brief EXP-F6 -- Figure 6: electronic structure validation.
///
/// Electronic DOS of graphene, diamond and C60 from the TB spectrum, and
/// the HOMO-LUMO gap as a function of system/cluster, demonstrating the
/// insulating diamond gap vs the near-gapless graphene pi system.

#include <cstdio>
#include <iostream>
#include <string>

#include "src/analysis/edos.hpp"
#include "src/io/table.hpp"
#include "src/structures/builders.hpp"
#include "src/structures/fullerene.hpp"
#include "src/structures/nanotube.hpp"
#include "src/tb/tb_calculator.hpp"

namespace {

using namespace tbmd;

void dos_series(const char* label, const System& system, io::Table& gaps,
                io::Table& dos_table) {
  tb::TightBindingCalculator calc(tb::xwch_carbon());
  const ForceResult r = calc.compute(system);
  const int ne = system.total_valence_electrons();
  const double gap = analysis::homo_lumo_gap(r.eigenvalues, ne);
  gaps.add_row({label, std::to_string(system.size()), std::to_string(gap),
                std::to_string(r.fermi_level)});

  const auto dos = analysis::electronic_dos(r.eigenvalues, 0.3, 160);
  for (std::size_t q = 0; q < dos.energies.size(); ++q) {
    dos_table.add_row({label, std::to_string(dos.energies[q] - r.fermi_level),
                       std::to_string(dos.dos[q])});
  }

  std::printf("\n%s (N = %zu, gap = %.2f eV): DOS vs E - E_F\n", label,
              system.size(), gap);
  for (std::size_t q = 0; q < dos.energies.size(); q += 8) {
    const double e = dos.energies[q] - r.fermi_level;
    if (e < -10.0 || e > 10.0) continue;
    const int stars = static_cast<int>(dos.dos[q] * 1.5);
    std::printf("  %+5.1f | %s\n", e,
                std::string(std::min(stars, 70), '*').c_str());
  }
}

}  // namespace

int main() {
  std::printf("EXP-F6: electronic DOS and HOMO-LUMO gaps (XWCH carbon)\n");

  io::Table gaps({"system", "atoms", "gap_eV", "mu_eV"});
  io::Table dos_table({"system", "E_minus_Ef_eV", "dos"});

  dos_series("graphene_3x3", structures::graphene(Element::C, 1.42, 3, 3),
             gaps, dos_table);
  dos_series("diamond_216", structures::diamond(Element::C, 3.567, 3, 3, 3),
             gaps, dos_table);
  dos_series("c60", structures::c60(), gaps, dos_table);
  dos_series("cnt_10_0",
             structures::nanotube(Element::C, 10, 0, 1.42, 2, true), gaps,
             dos_table);

  std::printf("\ngap summary:\n");
  gaps.print(std::cout);
  gaps.write_csv("exp_f6_gaps.csv");
  dos_table.write_csv("exp_f6_dos.csv");

  std::printf("\nExpected shape: diamond gap is the largest (insulator);\n"
              "graphene and the metallic (10,0)-family tube show small gaps\n"
              "(finite-size sampling); C60 shows a molecular gap ~1.5-2 eV.\n");
  return 0;
}
