/// \file traj_io.cpp
/// \brief Binary (.tbt) vs text XYZ trajectory output: size and speed.
///
/// Records the acceptance numbers for the compact trajectory format: a
/// 216-atom, 100-frame room-temperature run written as delta-encoded
/// binary must come out >= 5x smaller than the same run as text XYZ, and
/// writing it must be faster.  The frames come from a short Tersoff NVT
/// run so inter-frame displacements are realistic thermal ones -- the
/// regime the varint delta encoding is designed for.
///
/// Usage:  ./traj_io [frames]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/io/binary_trajectory.hpp"
#include "src/io/xyz.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/potentials/tersoff.hpp"
#include "src/structures/builders.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace tbmd;
  namespace fs = std::filesystem;
  const long frames = argc > 1 ? std::atol(argv[1]) : 100;

  System s = structures::diamond(Element::C, 3.567, 3, 3, 3);
  md::maxwell_boltzmann_velocities(s, 300.0, 11);
  potentials::TersoffCalculator calc(potentials::tersoff_carbon());
  md::MdOptions opt;
  opt.dt = 1.0;
  opt.thermostat = md::ThermostatSpec::nose_hoover(300.0, 50.0, 2);
  md::MdDriver driver(s, calc, opt);

  // Collect the frames first so both writers see identical work.
  std::vector<System> snapshots;
  snapshots.reserve(static_cast<std::size_t>(frames));
  for (long f = 0; f < frames; ++f) {
    driver.step();
    snapshots.push_back(s);
  }
  std::printf("traj-io bench: %zu atoms, %ld frames\n\n", s.size(), frames);

  const std::string xyz_path = "traj_io_bench.xyz";
  const std::string tbt_path = "traj_io_bench.tbt";

  WallTimer t_text;
  {
    io::TrajectoryWriter w(xyz_path);
    for (long f = 0; f < frames; ++f) {
      w.add_frame(snapshots[static_cast<std::size_t>(f)],
                  "step=" + std::to_string(f));
    }
  }
  const double s_text = t_text.seconds();

  WallTimer t_bin;
  {
    io::BinaryTrajectoryWriter w(tbt_path, s);
    for (long f = 0; f < frames; ++f) {
      w.add_frame(snapshots[static_cast<std::size_t>(f)], f);
    }
  }
  const double s_bin = t_bin.seconds();

  const auto bytes_text = fs::file_size(xyz_path);
  const auto bytes_bin = fs::file_size(tbt_path);
  const double ratio =
      static_cast<double>(bytes_text) / static_cast<double>(bytes_bin);

  // Read-back sanity: every frame decodes with the header atom count.
  std::size_t read_frames = 0;
  {
    io::BinaryTrajectoryReader r(tbt_path);
    io::TrajectoryFrame frame;
    while (r.next(frame)) {
      if (frame.positions.size() != s.size()) {
        std::fprintf(stderr, "FAIL: frame %zu has %zu atoms\n", read_frames,
                     frame.positions.size());
        return 1;
      }
      ++read_frames;
    }
  }

  std::printf("  text XYZ : %9ju bytes  (%6.1f ms, %5.1f B/atom/frame)\n",
              static_cast<std::uintmax_t>(bytes_text), s_text * 1000.0,
              static_cast<double>(bytes_text) /
                  static_cast<double>(s.size()) / static_cast<double>(frames));
  std::printf("  binary   : %9ju bytes  (%6.1f ms, %5.1f B/atom/frame)\n",
              static_cast<std::uintmax_t>(bytes_bin), s_bin * 1000.0,
              static_cast<double>(bytes_bin) /
                  static_cast<double>(s.size()) / static_cast<double>(frames));
  std::printf("  size ratio: %.2fx smaller   write speedup: %.2fx   "
              "frames read back: %zu\n\n",
              ratio, s_text / s_bin, read_frames);

  const bool pass = ratio >= 5.0 && s_bin < s_text &&
                    read_frames == static_cast<std::size_t>(frames);
  std::printf("traj-io gate: %s (need >= 5x smaller and faster)\n",
              pass ? "PASS" : "FAIL");
  fs::remove(xyz_path);
  fs::remove(tbt_path);
  return pass ? 0 : 1;
}
