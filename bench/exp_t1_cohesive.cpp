/// \file exp_t1_cohesive.cpp
/// \brief EXP-T1 -- Table 1: physical validation of the TB models.
///
/// For each phase (C diamond, Si diamond, C graphene) scan the lattice
/// parameter, fit a quadratic around the minimum, and report equilibrium
/// bond length, cohesive energy per atom and (for the cubic phases) the
/// bulk modulus, next to the literature reference values the 1990s TBMD
/// papers validated against.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/io/table.hpp"
#include "src/linalg/cholesky.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/radial.hpp"
#include "src/tb/tb_calculator.hpp"

namespace {

using namespace tbmd;

constexpr double kEvPerA3ToGPa = 160.21766;

struct Fit {
  double a0;      ///< minimizing lattice parameter
  double e0;      ///< energy per atom at the minimum (eV)
  double curv;    ///< d^2 E_atom / d a^2 at the minimum (eV/A^2)
};

/// Quadratic fit of (a, E/atom) samples around their minimum.
Fit fit_quadratic(const std::vector<double>& a, const std::vector<double>& e) {
  linalg::Matrix design(a.size(), 3);
  for (std::size_t q = 0; q < a.size(); ++q) {
    design(q, 0) = 1.0;
    design(q, 1) = a[q];
    design(q, 2) = a[q] * a[q];
  }
  const auto c = linalg::least_squares(design, e);
  Fit f;
  f.a0 = -c[1] / (2.0 * c[2]);
  f.e0 = c[0] + c[1] * f.a0 + c[2] * f.a0 * f.a0;
  f.curv = 2.0 * c[2];
  return f;
}

double free_atom_energy(const tb::TbModel& m) {
  // sp-valent atom with 4 electrons: s^2 p^2 configuration.
  double e = 2.0 * m.e_s + 2.0 * m.e_p;
  if (m.repulsion_kind == tb::RepulsionKind::kEmbeddedPolynomial) {
    e += tb::evaluate_polynomial(m.embed_coeff, 0.0).value;
  }
  return e;
}

}  // namespace

int main() {
  std::printf("EXP-T1: cohesive properties of the shipped TB models\n");
  std::printf("(paper-style validation table; reference values in brackets)\n\n");

  io::Table table({"phase", "model", "a0_or_bond_A", "ref_A", "Ecoh_eV",
                   "ref_eV", "B_GPa", "ref_GPa"});

  // --- carbon diamond ---
  {
    const tb::TbModel m = tb::xwch_carbon();
    tb::TightBindingCalculator calc(m);
    std::vector<double> as, es;
    for (double a = 3.40; a <= 3.76; a += 0.04) {
      System s = structures::diamond(Element::C, a, 2, 2, 2);
      as.push_back(a);
      es.push_back(calc.compute(s).energy / s.size());
    }
    const Fit f = fit_quadratic(as, es);
    const double bond = std::sqrt(3.0) / 4.0 * f.a0;
    const double ecoh = free_atom_energy(m) - f.e0;
    // Bulk modulus: B = a0^2/(9 V_atom') ... for cubic cells with 8 atoms
    // per a^3: E_cell = 8 E_atom, V = a^3 -> B = (a0^2/9V) d2E_cell/da2.
    const double b_gpa =
        (f.a0 * f.a0 / (9.0 * f.a0 * f.a0 * f.a0)) * (8.0 * f.curv) *
        kEvPerA3ToGPa;
    table.add_row({"C diamond", m.name, std::to_string(bond), "1.545",
                   std::to_string(ecoh), "7.37", std::to_string(b_gpa),
                   "442"});
  }

  // --- silicon diamond ---
  {
    const tb::TbModel m = tb::gsp_silicon();
    tb::TightBindingCalculator calc(m);
    std::vector<double> as, es;
    for (double a = 5.23; a <= 5.63; a += 0.05) {
      System s = structures::diamond(Element::Si, a, 2, 2, 2);
      as.push_back(a);
      es.push_back(calc.compute(s).energy / s.size());
    }
    const Fit f = fit_quadratic(as, es);
    const double bond = std::sqrt(3.0) / 4.0 * f.a0;
    const double ecoh = free_atom_energy(m) - f.e0;
    const double b_gpa =
        (f.a0 * f.a0 / (9.0 * f.a0 * f.a0 * f.a0)) * (8.0 * f.curv) *
        kEvPerA3ToGPa;
    table.add_row({"Si diamond", m.name, std::to_string(bond), "2.352",
                   std::to_string(ecoh), "4.63", std::to_string(b_gpa),
                   "98.8"});
  }

  // --- graphene (bond-length scan; 2D, so no bulk modulus) ---
  {
    const tb::TbModel m = tb::xwch_carbon();
    tb::TightBindingCalculator calc(m);
    std::vector<double> bs, es;
    for (double b = 1.34; b <= 1.52; b += 0.02) {
      System s = structures::graphene(Element::C, b, 3, 2);
      bs.push_back(b);
      es.push_back(calc.compute(s).energy / s.size());
    }
    const Fit f = fit_quadratic(bs, es);
    const double ecoh = free_atom_energy(m) - f.e0;
    table.add_row({"C graphene", m.name, std::to_string(f.a0), "1.42",
                   std::to_string(ecoh), "7.4", "-", "-"});
  }

  table.print(std::cout);
  table.write_csv("exp_t1_cohesive.csv");
  std::printf("\nCSV written to exp_t1_cohesive.csv\n");
  std::printf("Expected shape: equilibrium geometry within ~1%% of reference,\n"
              "cohesion within ~10%%, bulk modulus within ~20%% "
              "(empirical TB accuracy class).\n");
  return 0;
}
