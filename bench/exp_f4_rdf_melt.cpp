/// \file exp_f4_rdf_melt.cpp
/// \brief EXP-F4 -- Figure 4: melting of silicon seen in the radial
/// distribution function.
///
/// Heats crystalline Si64 from 300 K to 3500 K with the Nose-Hoover ramp
/// protocol and compares g(r) of the solid and the hot liquid: discrete
/// crystal shells vs a broad liquid first peak with a filled-in minimum.
/// Also tracks the mean-square displacement to flag the onset of
/// diffusion.

#include <cstdio>
#include <iostream>
#include <memory>

#include "src/analysis/msd.hpp"
#include "src/analysis/rdf.hpp"
#include "src/io/table.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/thermostat.hpp"
#include "src/md/velocities.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"

namespace {

using namespace tbmd;

void print_g(const char* label, const analysis::RdfAccumulator& acc,
             io::Table& table) {
  const auto r = acc.r_values();
  const auto g = acc.g_of_r();
  for (std::size_t b = 0; b < r.size(); ++b) {
    table.add_row({label, std::to_string(r[b]), std::to_string(g[b])});
  }
  std::printf("\n g(r) %s:\n", label);
  for (std::size_t b = 0; b < r.size(); b += 3) {
    const int stars = static_cast<int>(g[b] * 4.0);
    std::printf("  %4.2f | %s\n", r[b],
                std::string(std::min(stars, 70), '*').c_str());
  }
}

}  // namespace

int main() {
  std::printf("EXP-F4: solid vs liquid g(r) of TBMD silicon\n");

  System s = structures::diamond(Element::Si, 5.431, 2, 2, 2);
  md::maxwell_boltzmann_velocities(s, 300.0, 31);
  tb::TightBindingCalculator calc(tb::gsp_silicon());
  md::MdOptions opt;
  opt.dt = 1.5;
  // Stiff coupling (tau = 20 fs): the 300 -> 3500 K ramp must drag the
  // system along within the simulated ps.
  opt.thermostat = md::ThermostatSpec::nose_hoover(300.0, 20.0, 2);
  md::MdDriver driver(s, calc, std::move(opt));

  io::Table table({"phase", "r_A", "g"});

  // Solid sampling at 300 K.
  analysis::RdfAccumulator solid(5.4, 45);
  driver.run(150, [&](const md::MdDriver& d, long step) {
    if (step % 15 == 0) solid.add_frame(d.system());
  });
  print_g("solid 300 K", solid, table);

  // Ramp to 3500 K (about 10 K/fs here to stay affordable) then hold.
  analysis::MsdTracker msd(s);
  driver.ramp_temperature(3500.0, 200);
  driver.run(100);  // equilibrate the liquid
  std::printf("\nafter ramp: T = %.0f K, MSD since solid = %.2f A^2\n",
              s.temperature(), msd.msd(s));

  analysis::RdfAccumulator liquid(5.4, 45);
  analysis::MsdTracker diffusion(s);
  driver.run(200, [&](const md::MdDriver& d, long step) {
    if (step % 15 == 0) liquid.add_frame(d.system());
  });
  print_g("liquid 3500 K", liquid, table);
  std::printf("\nliquid-phase MSD over %.0f fs: %.2f A^2 (diffusive if >> "
              "thermal wiggle)\n",
              200 * 1.5, diffusion.msd(s));

  table.write_csv("exp_f4_rdf.csv");
  std::printf("\nExpected shape: solid shows discrete shells at 2.35 and "
              "3.84 A with an\nempty gap; liquid shows one broad first peak "
              "near ~2.4-2.5 A, a filled\nminimum, and large MSD.\n");
  return 0;
}
