/// \file on_nve_gate.cpp
/// \brief CI gate for the O(N) engine: force accuracy vs exact
/// diagonalization plus a short NVE energy-conservation slice, with hard
/// bounds and a nonzero exit code on violation.
///
/// Run by the `on-accuracy` workflow job (scheduled + `on-accuracy` PR
/// label) after exp_t3_on_accuracy; unlike the experiment harnesses this
/// program *asserts*:
///   1. max |F_on - F_exact| <= force_bound   (eV/A, step 0, 216 atoms)
///   2. |E_on - E_exact| / N <= energy_bound  (eV/atom)
///   3. NVE conserved-energy drift over the slice <= drift_bound (eV/atom),
///      measured as max deviation from the initial total energy.
///
/// Usage: on_nve_gate [--atoms 216] [--steps 20] [--dt 1.0] [--temp 300]
///                    [--drop 1e-6] [--precision fp64|mixed]
///                    [--force-bound 2e-2]
///                    [--energy-bound 2e-3] [--drift-bound 2e-3]
/// Writes on_nve_gate.csv (per-step energies) for the artifact upload.
/// --precision mixed runs the O(N) engine on the mixed-precision
/// purification loop (fp32 tiles early, fp64 promotion late); the same
/// bounds apply, so the CI mixed job gates the fp32 phase's accuracy
/// against exact diagonalization directly.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/calculator_spec.hpp"
#include "src/io/table.hpp"
#include "src/md/md_driver.hpp"
#include "src/md/velocities.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/timer.hpp"

namespace {

double arg_or(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string str_arg_or(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tbmd;

  const int atoms = static_cast<int>(arg_or(argc, argv, "--atoms", 216));
  const long steps = static_cast<long>(arg_or(argc, argv, "--steps", 20));
  const double dt = arg_or(argc, argv, "--dt", 1.0);
  const double temp = arg_or(argc, argv, "--temp", 300.0);
  const double drop = arg_or(argc, argv, "--drop", 1e-6);
  const PrecisionMode precision = NumericsSpec::precision_by_name(
      str_arg_or(argc, argv, "--precision", "fp64"));
  const double force_bound = arg_or(argc, argv, "--force-bound", 2e-2);
  const double energy_bound = arg_or(argc, argv, "--energy-bound", 2e-3);
  const double drift_bound = arg_or(argc, argv, "--drift-bound", 2e-3);

  const int nx = static_cast<int>(std::lround(std::cbrt(atoms / 8.0)));
  std::printf("ON-NVE gate: %d atoms, %ld steps @ %.2f fs, T0 = %.0f K, "
              "drop = %.1e, precision = %s\n\n", 8 * nx * nx * nx, steps, dt,
              temp, drop, precision == PrecisionMode::kMixed ? "mixed"
                                                             : "fp64");

  const tb::TbModel model = tb::xwch_carbon();
  System s = structures::diamond(Element::C, 3.567, nx, nx, nx);
  structures::perturb(s, 0.02, 13);
  md::maxwell_boltzmann_velocities(s, temp, 7);
  const double n = static_cast<double>(s.size());

  // --- 1+2: O(N) forces and energy vs exact diagonalization -------------
  const auto exact = make_calculator(model, s, CalculatorSpec::exact());
  CalculatorSpec on_spec = CalculatorSpec::order_n(drop);
  on_spec.numerics.precision = precision;
  const auto on_calc = make_calculator(model, s, on_spec);
  auto& on = static_cast<onx::OrderNCalculator&>(*on_calc);

  WallTimer t_exact;
  const ForceResult re = exact->compute(s);
  const double ms_exact = t_exact.seconds() * 1000.0;
  WallTimer t_on;
  const ForceResult ro = on.compute(s);
  const double ms_on = t_on.seconds() * 1000.0;

  double worst_force = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    worst_force = std::max(worst_force, norm(re.forces[i] - ro.forces[i]));
  }
  const double energy_err = std::fabs(re.energy - ro.energy) / n;
  const bool converged = on.last_purification().converged;

  std::printf("  exact force call: %8.1f ms\n", ms_exact);
  std::printf("  O(N)  force call: %8.1f ms  (%d PM iterations, fill %.3f)\n",
              ms_on, on.last_purification().iterations,
              on.last_purification().fill_fraction);
  if (precision == PrecisionMode::kMixed) {
    const onx::NumericsStats& st = on.numerics_stats();
    std::printf("  precision split : %d fp32 + %d fp64 iterations "
                "(promoted at %d)\n",
                st.fp32_iterations, st.fp64_iterations, st.promoted_at);
  }
  std::printf("  max |dF|        : %10.3e eV/A   (bound %.1e)\n", worst_force,
              force_bound);
  std::printf("  |dE| / atom     : %10.3e eV     (bound %.1e)\n\n", energy_err,
              energy_bound);

  // --- 3: NVE conservation slice on the O(N) engine ----------------------
  io::Table table({"step", "time_fs", "total_eV", "potential_eV",
                   "kinetic_eV", "drift_eV_atom"});
  md::MdDriver driver(s, on, {dt});
  // Baseline BEFORE the first step (the driver's constructor has already
  // evaluated forces), so a one-time energy jump in step 1 is gated too.
  const double e0 = driver.total_energy();
  double worst_drift = 0.0;
  driver.run(steps, [&](const md::MdDriver& d, long step) {
    const double total = d.total_energy();
    const double drift = std::fabs(total - e0) / n;
    worst_drift = std::max(worst_drift, drift);
    table.add_numeric_row(
        {static_cast<double>(step), d.time_fs(), total, d.last_result().energy,
         d.system().kinetic_energy(), drift},
        6);
  });

  table.print(std::cout);
  table.write_csv("on_nve_gate.csv");
  std::printf("\n  max NVE drift   : %10.3e eV/atom (bound %.1e)\n",
              worst_drift, drift_bound);

  // --- verdict ------------------------------------------------------------
  bool ok = true;
  auto check = [&](bool pass, const char* what) {
    std::printf("  [%s] %s\n", pass ? "ok" : "FAIL", what);
    ok &= pass;
  };
  std::printf("\n");
  check(converged, "purification converged");
  check(worst_force <= force_bound, "O(N) vs exact force error");
  check(energy_err <= energy_bound, "O(N) vs exact energy error");
  check(worst_drift <= drift_bound, "NVE conserved-energy drift");
  return ok ? 0 : 1;
}
