/// \file on_crossover.cpp
/// \brief O(N)-vs-exact crossover sweep: per-step wall time of the
/// partial-spectrum exact path (TightBindingCalculator, SpectrumMode
/// kPartial via the MD production configuration) against the symmetric-half
/// O(N) purification engine at N in {64, 128, 216, 288, 512}.
///
/// The O(N) calculator is timed in its steady state (warm neighbor list,
/// warm SpMM pattern cache), which is what an MD trajectory pays per step.
/// Prints a table, writes on_crossover.csv (CI artifact of the
/// `on-accuracy` job; the README crossover table is generated from it) and
/// reports the interpolated crossover size.
///
/// Usage: on_crossover [--reps 2] [--drop 1e-6] [--max-atoms 512]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "src/core/calculator_spec.hpp"
#include "src/io/table.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace tbmd;

double arg_or(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

double time_force_call(Calculator& calc, System& s, int repeats) {
  (void)calc.compute(s);  // warm: neighbor list, bond table, pattern cache
  WallTimer t;
  for (int q = 0; q < repeats; ++q) (void)calc.compute(s);
  return t.seconds() * 1000.0 / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(arg_or(argc, argv, "--reps", 2));
  const double drop = arg_or(argc, argv, "--drop", 1e-6);
  const int max_atoms =
      static_cast<int>(arg_or(argc, argv, "--max-atoms", 512));

  std::printf("O(N) crossover sweep: exact(kPartial) vs tb_on, drop = %.1e, "
              "%d rep(s)\n\n", drop, reps);

  struct Spec {
    int nx, ny, nz;
  };
  const std::vector<Spec> specs{
      {2, 2, 2}, {2, 2, 4}, {3, 3, 3}, {3, 3, 4}, {4, 4, 4}};

  io::Table table({"N_atoms", "tb_exact_ms", "tb_on_ms", "on_over_exact",
                   "pm_iterations", "fill_fraction"});
  double prev_ratio = -1.0, prev_n = 0.0, crossover = -1.0;
  for (const Spec& sp : specs) {
    System s = structures::diamond(Element::C, 3.567, sp.nx, sp.ny, sp.nz);
    if (static_cast<int>(s.size()) > max_atoms) break;
    structures::perturb(s, 0.02, 3);
    const double n = static_cast<double>(s.size());

    // MD production configuration: no eigenvalue reporting, so kAuto takes
    // the partial-spectrum (occupied window) path.
    CalculatorSpec espec = CalculatorSpec::exact();
    espec.report_eigenvalues = false;
    const auto exact = make_calculator(tb::xwch_carbon(), s, espec);
    const double ms_exact = time_force_call(*exact, s, reps);

    const auto on_calc =
        make_calculator(tb::xwch_carbon(), s, CalculatorSpec::order_n(drop));
    auto& on = static_cast<onx::OrderNCalculator&>(*on_calc);
    const double ms_on = time_force_call(on, s, reps);

    const double ratio = ms_on / ms_exact;
    table.add_numeric_row({n, ms_exact, ms_on, ratio,
                           static_cast<double>(on.last_purification().iterations),
                           on.last_purification().fill_fraction},
                          4);
    // Log-linear interpolation of the N where the ratio crosses 1.
    if (prev_ratio > 1.0 && ratio <= 1.0) {
      const double f = std::log(prev_ratio) /
                       (std::log(prev_ratio) - std::log(ratio));
      crossover = std::exp(std::log(prev_n) +
                           f * (std::log(n) - std::log(prev_n)));
    }
    prev_ratio = ratio;
    prev_n = n;
  }

  table.print(std::cout);
  table.write_csv("on_crossover.csv");
  if (crossover > 0.0) {
    std::printf("\ncrossover: tb_on beats the exact partial-spectrum path "
                "at N ~ %.0f atoms\n", crossover);
  } else if (prev_ratio > 0.0 && prev_ratio <= 1.0) {
    std::printf("\ncrossover: tb_on already ahead over the whole sweep\n");
  } else {
    std::printf("\ncrossover: not reached within the sweep (ratio %.2f at "
                "N = %.0f)\n", prev_ratio, prev_n);
  }
  return 0;
}
