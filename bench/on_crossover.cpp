/// \file on_crossover.cpp
/// \brief O(N)-vs-exact crossover sweep: per-step wall time of the
/// partial-spectrum exact path (TightBindingCalculator, SpectrumMode
/// kPartial via the MD production configuration) against the symmetric-half
/// O(N) purification engine at N from 64 up to 21952 atoms.
///
/// The O(N) calculator is timed in its steady state (warm neighbor list,
/// warm SpMM pattern cache), which is what an MD trajectory pays per step.
/// Prints a table, writes on_crossover.csv (CI artifact of the
/// `on-accuracy` job; the README crossover table is generated from it) and
/// reports the interpolated crossover size.
///
/// Exact diagonalization is only *measured* up to --exact-max atoms (the
/// partial-spectrum path is cubic: 5832 atoms would take hours); larger
/// sizes extrapolate cubically from the last measured point, and the
/// exact_measured column records which rows are real timings.
///
/// Thread-scaling mode (--threads 1,2,4) re-times the O(N) engine at each
/// team size, uses the largest one for the crossover table, and writes the
/// full (N, threads, ms, speedup) grid to on_threads.csv -- the CI
/// `scaling` job's artifact.
///
/// Usage: on_crossover [--reps 2] [--drop 1e-6] [--max-atoms 512]
///                     [--exact-max 1000] [--threads 1,2,4]
///                     [--domains N] [--reorder] [--cache-bounds]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/calculator_spec.hpp"
#include "src/io/table.hpp"
#include "src/onx/on_calculator.hpp"
#include "src/structures/builders.hpp"
#include "src/tb/tb_calculator.hpp"
#include "src/util/parallel.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace tbmd;

double arg_or(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

const char* arg_str(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::vector<int> parse_thread_list(const char* text) {
  std::vector<int> out;
  if (text == nullptr) return out;
  const std::string s(text);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma - pos);
    const int t = std::atoi(tok.c_str());
    if (t > 0) out.push_back(t);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

double time_force_call(Calculator& calc, System& s, int repeats) {
  (void)calc.compute(s);  // warm: neighbor list, bond table, pattern cache
  WallTimer t;
  for (int q = 0; q < repeats; ++q) (void)calc.compute(s);
  return t.seconds() * 1000.0 / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(arg_or(argc, argv, "--reps", 2));
  const double drop = arg_or(argc, argv, "--drop", 1e-6);
  const int max_atoms =
      static_cast<int>(arg_or(argc, argv, "--max-atoms", 512));
  const int exact_max =
      static_cast<int>(arg_or(argc, argv, "--exact-max", 1000));
  const std::vector<int> threads =
      parse_thread_list(arg_str(argc, argv, "--threads"));

  onx::OrderNOptions oopt;
  oopt.purification.drop_tolerance = drop;
  oopt.domains = static_cast<int>(arg_or(argc, argv, "--domains", 0));
  oopt.reorder_domains = has_flag(argc, argv, "--reorder");
  oopt.cache_spectral_bounds = has_flag(argc, argv, "--cache-bounds");

  std::printf("O(N) crossover sweep: exact(kPartial) vs tb_on, drop = %.1e, "
              "%d rep(s)\n", drop, reps);
  if (!threads.empty()) {
    std::printf("thread sweep:");
    for (const int t : threads) std::printf(" %d", t);
    std::printf(" (crossover table uses the largest)\n");
  }
  std::printf("\n");

  struct Spec {
    int nx, ny, nz;
  };
  const std::vector<Spec> specs{{2, 2, 2},    {2, 2, 4},  {3, 3, 3},
                                {3, 3, 4},    {4, 4, 4},  {5, 5, 5},
                                {9, 9, 9},    {14, 14, 14}};

  io::Table table({"N_atoms", "tb_exact_ms", "tb_on_ms", "on_over_exact",
                   "pm_iterations", "fill_fraction", "exact_measured"});
  io::Table tgrid({"N_atoms", "threads", "tb_on_ms", "speedup"});
  const tb::TbModel model = tb::xwch_carbon();
  double prev_ratio = -1.0, prev_n = 0.0, crossover = -1.0;
  double last_exact_ms = -1.0, last_exact_n = 0.0;
  for (const Spec& sp : specs) {
    System s = structures::diamond(Element::C, 3.567, sp.nx, sp.ny, sp.nz);
    if (static_cast<int>(s.size()) > max_atoms) break;
    structures::perturb(s, 0.02, 3);
    const double n = static_cast<double>(s.size());

    // MD production configuration: no eigenvalue reporting, so kAuto takes
    // the partial-spectrum (occupied window) path.  Beyond --exact-max the
    // cubic cost is extrapolated from the last real timing instead.
    double ms_exact;
    const bool exact_measured = static_cast<int>(s.size()) <= exact_max;
    if (exact_measured) {
      CalculatorSpec espec = CalculatorSpec::exact();
      espec.report_eigenvalues = false;
      const auto exact = make_calculator(model, s, espec);
      ms_exact = time_force_call(*exact, s, reps);
      last_exact_ms = ms_exact;
      last_exact_n = n;
    } else if (last_exact_ms > 0.0) {
      const double x = n / last_exact_n;
      ms_exact = last_exact_ms * x * x * x;
    } else {
      std::printf("  N = %.0f skipped: no exact timing to extrapolate from\n",
                  n);
      continue;
    }

    double ms_on = -1.0;
    std::size_t pm_iters = 0;
    double fill = 0.0;
    const std::vector<int> team_sizes =
        threads.empty() ? std::vector<int>{0} : threads;
    double base_ms = -1.0;
    for (const int t : team_sizes) {
      if (t > 0) par::set_num_threads(t);
      onx::OrderNCalculator on(model, oopt);
      const double ms = time_force_call(on, s, reps);
      pm_iters = on.last_purification().iterations;
      fill = on.last_purification().fill_fraction;
      if (base_ms < 0.0) base_ms = ms;
      if (t > 0) {
        tgrid.add_numeric_row(
            {n, static_cast<double>(t), ms, base_ms / ms}, 4);
      }
      ms_on = ms;  // the last (largest) team size drives the crossover
    }

    const double ratio = ms_on / ms_exact;
    table.add_numeric_row({n, ms_exact, ms_on, ratio,
                           static_cast<double>(pm_iters), fill,
                           exact_measured ? 1.0 : 0.0},
                          4);
    std::printf("  measured N = %.0f\n", n);
    // Log-linear interpolation of the N where the ratio crosses 1.
    if (prev_ratio > 1.0 && ratio <= 1.0) {
      const double f = std::log(prev_ratio) /
                       (std::log(prev_ratio) - std::log(ratio));
      crossover = std::exp(std::log(prev_n) +
                           f * (std::log(n) - std::log(prev_n)));
    }
    prev_ratio = ratio;
    prev_n = n;
  }

  std::printf("\n");
  table.print(std::cout);
  table.write_csv("on_crossover.csv");
  if (!threads.empty()) {
    std::printf("\n");
    tgrid.print(std::cout);
    tgrid.write_csv("on_threads.csv");
  }
  if (crossover > 0.0) {
    std::printf("\ncrossover: tb_on beats the exact partial-spectrum path "
                "at N ~ %.0f atoms\n", crossover);
  } else if (prev_ratio > 0.0 && prev_ratio <= 1.0) {
    std::printf("\ncrossover: tb_on already ahead over the whole sweep\n");
  } else {
    std::printf("\ncrossover: not reached within the sweep (ratio %.2f at "
                "N = %.0f)\n", prev_ratio, prev_n);
  }
  return 0;
}
